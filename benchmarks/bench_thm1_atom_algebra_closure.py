"""E-THM1 — Theorem 1: the atom-type operations form an algebra on DB*.

Audits the closure property over randomized databases and over chains of
operations: every result atom type is valid (its occurrence respects its
description), every inherited link type is well-defined (no dangling links),
and the enlarged database is again a member of the database domain.
"""

from __future__ import annotations

from conftest import report

from repro import attr
from repro.core.atom_algebra import AtomAlgebra
from repro.datasets.synthetic import build_synthetic_network
from repro.schema import validate_database


def _audit_result(result) -> None:
    """Check one operation result: valid atom type + well-defined inherited link types."""
    atom_type = result.atom_type
    for atom in atom_type:
        atom_type.description.validate_values(atom.values)
    identifiers = set(atom_type.identifiers())
    for link_type in result.inherited_link_types:
        for link in link_type:
            assert any(identifier in identifiers for identifier in link.identifiers), (
                f"inherited link {link!r} does not touch the result atom type"
            )
    assert result.database.is_valid()


def test_thm1_single_operations_closed(benchmark):
    """Each of π, σ, ×, ω, δ yields a valid atom type with well-defined inherited links."""
    db = build_synthetic_network(n_atom_types=4, atoms_per_type=25, links_per_type=40, seed=3)

    def run_all_operations():
        algebra = AtomAlgebra(db)
        results = [
            algebra.project("t0", ["key", "value"]),
            algebra.restrict("t1", attr("value") > 50),
            algebra.product("t0", "t1"),
            algebra.union("t2", "t2"),
            algebra.difference("t3", "t3"),
        ]
        return results

    results = benchmark(run_all_operations)

    for result in results:
        _audit_result(result)
    report(
        "Theorem 1: single-operation closure audit",
        [("operation", "result atoms", "inherited link types", "valid")]
        + [
            (result.atom_type.name.split("$")[0], len(result.atom_type),
             len(result.inherited_link_types), "yes")
            for result in results
        ],
    )


def test_thm1_operation_chains_closed(benchmark):
    """Operation results can be reused as operands — the whole point of closure."""
    db = build_synthetic_network(n_atom_types=3, atoms_per_type=20, links_per_type=30, seed=11)

    def run_chain():
        algebra = AtomAlgebra(db)
        step1 = algebra.restrict("t0", attr("value") > 25)
        step2 = algebra.project(step1.atom_type, ["key", "grp"])
        step3 = algebra.product(step2.atom_type, "t1")
        step4 = algebra.restrict(step3.atom_type, attr("grp") == "alpha")
        step5 = algebra.union(step4.atom_type, step4.atom_type)
        return [step1, step2, step3, step4, step5]

    steps = benchmark(run_chain)

    for step in steps:
        _audit_result(step)
    final_db = steps[-1].database
    assert validate_database(final_db).is_valid
    # The enlarged database kept every original type and added the results.
    assert len(final_db.atom_types) >= len(db.atom_types) + len(steps)


def test_thm1_randomized_databases(benchmark):
    """The closure audit holds across differently-shaped random databases."""

    def audit_many():
        audited = 0
        for seed in range(6):
            db = build_synthetic_network(
                n_atom_types=2 + seed % 4,
                atoms_per_type=10 + 3 * seed,
                links_per_type=15 + 5 * seed,
                seed=seed,
            )
            algebra = AtomAlgebra(db)
            names = list(db.atom_type_names)
            _audit_result(algebra.restrict(names[0], attr("value") >= 0))
            _audit_result(algebra.project(names[-1], ["key"]))
            if len(names) >= 2:
                _audit_result(algebra.product(names[0], names[1]))
            audited += 1
        return audited

    audited = benchmark(audit_many)
    assert audited == 6
