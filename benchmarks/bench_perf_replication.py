"""E-PERF11 — log-shipping replication: read scale-out, lag, promotion.

Runs the BOM read workload over ``PrimaEngine`` followers created through the
replication hub: each follower seeds from the latest checkpoint plus WAL
tail, then stays current on the in-process commit feed.  The report covers:

* **read throughput scaling** — requests/second with the reads spread
  round-robin over 1/2/4 followers vs. the single-engine baseline, on the
  E-PERF7 request model: every request executes its read and then waits out
  a fixed per-request stall (``io_stall_ms``) modelling the off-GIL time a
  multi-client deployment spends per request — client wire I/O, durable page
  reads, result compression.  Followers overlap those stalls, so the bound
  (≥ 2× at 4 followers) holds regardless of core count;
* **honesty about the GIL** — followers here are in-process engines, so the
  pure-Python execute phase is time-sliced, not parallel, under CPython's
  GIL; the report also measures and publishes ``cpu_bound_speedup`` (zero
  stall), expected to hover near 1× — the number that would move on a
  free-threaded build or with out-of-process followers.  ``cpu_count`` is
  recorded alongside;
* **byte-identical results** — every follower count returns exactly the
  serial fingerprints; the replica *router* (``mode="replica"``) matches
  serial execution too; a mid-catch-up follower matches the primary pinned
  at the follower's applied generation (bounded staleness, never a torn
  state);
* **replication lag** — after a 500-record write burst the hub reports the
  followers' lag in generations, and one ``catch_up_all`` ships the whole
  burst within the bound (< 250 ms) and returns the lag to zero;
* **promotion** — fencing the primary and promoting a follower hands over
  byte-identical state, and the fenced primary refuses further writes.

Run standalone to emit ``BENCH_replication.json``::

    python benchmarks/bench_perf_replication.py [--quick] [-o OUT.json]
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List

from bench_common import (
    fingerprint,
    parse_benchmark_args,
    report,
    timed,
    write_report,
)

from repro.core.atom import reset_surrogate_counter
from repro.exceptions import StorageError
from repro.storage.engine import PrimaEngine
from repro.storage.wal import DurabilityConfig

#: One client request batch: a recursive explosion, a selective closure, and
#: a grouped aggregate — the same pure-Python reads E-PERF10 ships to worker
#: processes, here routed to followers.
STATEMENTS = [
    "SELECT ALL FROM RECURSIVE part [composition] DOWN;",
    "SELECT ALL FROM RECURSIVE part [composition] DOWN WHERE part.level = 0;",
    "SELECT part.level, COUNT(DISTINCT part.cost), SUM(part.cost) "
    "FROM part GROUP BY part.level;",
]

REPLICA_COUNTS = (1, 2, 4)
BURST_RECORDS = 500
CATCHUP_BOUND_MS = 250.0
STALLED_SPEEDUP_BOUND = 2.0


def build_engine(directory: str, parts: int) -> PrimaEngine:
    """A durable BOM forest: ``parts`` atoms in 8-wide trees, checkpointed."""
    reset_surrogate_counter()
    engine = PrimaEngine(durability=DurabilityConfig(directory))
    engine.create_atom_type(
        "part", {"part_no": "string", "level": "integer", "cost": "integer"}
    )
    engine.create_link_type("composition", "part", "part")
    for i in range(parts):
        engine.store_atom(
            "part",
            identifier=f"p{i}",
            part_no=f"P{i:05d}",
            level=i % 7,
            cost=(i * 37) % 500,
        )
    for i in range(1, parts):
        engine.connect("composition", f"p{(i - 1) // 8}", f"p{i}")
    engine.checkpoint()
    for statement in STATEMENTS:
        engine.query(statement)  # warm snapshot / network / planner
    return engine


def run_requests(targets, requests: List[str], io_stall_s: float) -> Dict[str, object]:
    """Spread *requests* round-robin over *targets* (engines or followers),
    one client thread per target, each request followed by the modelled
    stall.  Returns wall-clock, throughput, and ordered fingerprints."""

    def serve(index_statement):
        index, statement = index_statement
        result = targets[index % len(targets)].query(statement)
        if io_stall_s > 0:
            time.sleep(io_stall_s)
        return index, fingerprint(result)

    def run() -> List[str]:
        with ThreadPoolExecutor(max_workers=len(targets)) as executor:
            done = list(executor.map(serve, enumerate(requests)))
        return [print_ for _, print_ in sorted(done)]

    prints, seconds = timed(run)
    return {
        "seconds": seconds,
        "requests_per_second": len(requests) / max(seconds, 1e-9),
        "fingerprints": prints,
    }


def measure_scaling(
    engine: PrimaEngine, requests: List[str], io_stall_s: float
) -> Dict[str, object]:
    hub = engine.replication_hub()
    followers = [engine.create_follower(f"bench-{i}") for i in range(max(REPLICA_COUNTS))]
    hub.catch_up_all()
    serial = run_requests([engine], requests, io_stall_s)
    points = []
    for count in REPLICA_COUNTS:
        run = run_requests(followers[:count], requests, io_stall_s)
        run["replicas"] = count
        run["speedup"] = run["requests_per_second"] / max(
            serial["requests_per_second"], 1e-9
        )
        run["identical"] = run["fingerprints"] == serial["fingerprints"]
        points.append(run)
    # The honesty number: the same spread with a zero stall is GIL-bound.
    cpu_serial = run_requests([engine], requests, 0.0)
    cpu_spread = run_requests(followers, requests, 0.0)
    return {
        "serial": {k: v for k, v in serial.items() if k != "fingerprints"},
        "points": [
            {k: v for k, v in p.items() if k != "fingerprints"} for p in points
        ],
        "cpu_bound_speedup": cpu_spread["requests_per_second"]
        / max(cpu_serial["requests_per_second"], 1e-9),
        "followers": followers,
    }


def measure_lag_and_promotion(engine: PrimaEngine) -> Dict[str, object]:
    """Burst writes, read the lag, time the catch-up, then promote."""
    hub = engine.replication_hub()
    follower = hub.followers()[0]
    hub.catch_up_all()
    # Pin before the burst: the open handle retains the pre-burst history,
    # and its generation equals every follower's applied generation.
    with engine.snapshot_at() as pinned:
        for i in range(BURST_RECORDS):
            engine.store_atom(
                "part", identifier=f"b{i}", part_no=f"B{i:05d}", level=9, cost=i % 500
            )
        lag_after_burst = hub.max_lag()
        # Bounded staleness mid-catch-up: the lagging follower answers
        # exactly like the primary pinned at the follower's generation.
        stale_parity = all(
            fingerprint(follower.query(s)) == fingerprint(pinned.query(s))
            for s in STATEMENTS
        )
    _, seconds = timed(hub.catch_up_all)
    serial = [fingerprint(engine.query(s)) for s in STATEMENTS]
    parity_after_burst = all(
        [fingerprint(f.query(s)) for s in STATEMENTS] == serial
        for f in hub.followers()
    )
    promoted = follower.promote()
    promotion_parity = [fingerprint(promoted.query(s)) for s in STATEMENTS] == serial
    try:
        engine.store_atom("part", identifier="nope", part_no="X", level=0, cost=0)
        fenced_refuses = False
    except StorageError:
        fenced_refuses = True
    return {
        "burst_records": BURST_RECORDS,
        "lag_after_burst": lag_after_burst,
        "lag_after_catchup": hub.max_lag(),
        "catchup_ms": seconds * 1000.0,
        "stale_parity_mid_catchup": stale_parity,
        "parity_after_burst": parity_after_burst,
        "promotion_parity": promotion_parity,
        "fenced_primary_refuses_writes": fenced_refuses,
    }


def compare(parts: int, request_rounds: int, io_stall_ms: float) -> Dict[str, object]:
    requests = [
        STATEMENTS[i % len(STATEMENTS)]
        for i in range(request_rounds * len(STATEMENTS))
    ]
    directory = tempfile.mkdtemp(prefix="bench-replication-")
    engine = build_engine(directory, parts)
    try:
        scaling = measure_scaling(engine, requests, io_stall_ms / 1000.0)
        scaling.pop("followers")
        # The replica router itself: one dispatch over the caught-up fleet.
        serial_router = [
            fingerprint(r) for r in engine.parallel_query(STATEMENTS, mode="serial")
        ]
        routed = [
            fingerprint(r) for r in engine.parallel_query(STATEMENTS, mode="replica")
        ]
        lag = measure_lag_and_promotion(engine)
        counters = {
            key: value
            for key, value in engine.maintenance_report().items()
            if key.startswith("replication_")
        }
        speedup_4 = next(
            p["speedup"] for p in scaling["points"] if p["replicas"] == max(REPLICA_COUNTS)
        )
        return {
            "experiment": "E-PERF11 log-shipping replication "
            "(follower engines, catch-up, promotion, read router)",
            "parts": parts,
            "requests": len(requests),
            "io_stall_ms": io_stall_ms,
            "cpu_count": os.cpu_count() or 1,
            "scaling": scaling,
            "speedup_4_replicas": speedup_4,
            "speedup_target": STALLED_SPEEDUP_BOUND,
            # Stall overlap needs no extra cores, so the bound binds
            # everywhere — unlike the cpu-bound number published above it.
            "speedup_target_met": speedup_4 >= STALLED_SPEEDUP_BOUND,
            "router_parity": routed == serial_router,
            "lag": lag,
            "catchup_bound_ms": CATCHUP_BOUND_MS,
            "catchup_target_met": lag["catchup_ms"] < CATCHUP_BOUND_MS,
            "results_identical": (
                all(p["identical"] for p in scaling["points"])
                and routed == serial_router
                and lag["stale_parity_mid_catchup"]
                and lag["parity_after_burst"]
                and lag["promotion_parity"]
            ),
            "replication_counters": counters,
            "gil_note": (
                "followers are in-process engines: the stalled workload "
                "overlaps per-request off-GIL time and scales; the pure-"
                "Python execute phase stays GIL-bound (cpu_bound_speedup) "
                "until followers run out of process"
            ),
        }
    finally:
        engine.close()
        shutil.rmtree(directory, ignore_errors=True)


# ------------------------------------------------------------- shape checks


def test_perf11_replication_parity_lag_and_promotion():
    """Follower reads, the replica router, mid-catch-up staleness, and the
    promoted engine are all byte-identical to serial execution; the burst
    shows up as lag and one catch-up clears it.

    The stalled speedup bound is asserted by the standalone run, not here —
    a loaded CI box makes sleep-overlap timing unreliable; parity and lag
    accounting must hold everywhere.
    """
    result = compare(parts=240, request_rounds=2, io_stall_ms=2.0)
    assert result["results_identical"]
    assert result["router_parity"]
    assert result["lag"]["lag_after_burst"] == BURST_RECORDS
    assert result["lag"]["lag_after_catchup"] == 0
    assert result["lag"]["fenced_primary_refuses_writes"]
    assert result["replication_counters"]["replication_promotions"] == 1


def main(argv=None) -> None:
    args = parse_benchmark_args(
        argv,
        default_output="BENCH_replication.json",
        description="E-PERF11: log-shipping replication benchmark",
    )
    if args.quick:
        result = compare(parts=240, request_rounds=2, io_stall_ms=30.0)
    else:
        result = compare(parts=480, request_rounds=4, io_stall_ms=60.0)
    report(
        "E-PERF11 replica read scaling "
        f"(cpus={result['cpu_count']}, parts={result['parts']}, "
        f"stall={result['io_stall_ms']}ms)",
        [("replicas", "seconds", "req/s", "speedup", "identical")]
        + [
            (
                p["replicas"],
                f"{p['seconds']:.3f}",
                f"{p['requests_per_second']:.1f}",
                f"{p['speedup']:.2f}x",
                p["identical"],
            )
            for p in result["scaling"]["points"]
        ]
        + [("cpu-bound", "", "", f"{result['scaling']['cpu_bound_speedup']:.2f}x", "")],
    )
    report(
        "E-PERF11 lag under write burst + promotion",
        [
            ("burst records", result["lag"]["burst_records"]),
            ("lag after burst", result["lag"]["lag_after_burst"]),
            ("catch-up ms", f"{result['lag']['catchup_ms']:.1f}"),
            ("bound ms", result["catchup_bound_ms"]),
            ("lag after catch-up", result["lag"]["lag_after_catchup"]),
            ("stale parity mid-catch-up", result["lag"]["stale_parity_mid_catchup"]),
            ("parity after burst", result["lag"]["parity_after_burst"]),
            ("promotion parity", result["lag"]["promotion_parity"]),
            ("fenced primary refuses", result["lag"]["fenced_primary_refuses_writes"]),
        ],
    )
    write_report(args.output, result)


if __name__ == "__main__":
    main()
