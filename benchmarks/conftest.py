"""Shared fixtures and reporting helpers for the reproduction benchmarks.

Each benchmark module corresponds to one experiment id of DESIGN.md /
EXPERIMENTS.md (a figure, a theorem, or a performance claim of the paper).
Benchmarks both *measure* (via pytest-benchmark) and *assert the shape* the
paper reports (who wins, what is shared, what is reproduced exactly).
"""

from __future__ import annotations

import pytest
from bench_common import report  # noqa: F401 - re-exported for the bench modules

from repro import load_geography
from repro.core.molecule import MoleculeTypeDescription
from repro.datasets.geography import (
    build_geography,
    mt_state_description,
    point_neighborhood_description,
)


@pytest.fixture(scope="module")
def geo_db():
    """The paper-faithful Brazil database (Figs. 1 and 4)."""
    return load_geography()


@pytest.fixture(scope="module")
def mt_state_desc():
    """The molecule structure of ``mt_state`` (Fig. 2)."""
    atom_types, directed_links = mt_state_description()
    return MoleculeTypeDescription(atom_types, directed_links)


@pytest.fixture(scope="module")
def point_neighborhood_desc():
    """The molecule structure of ``point neighborhood`` (Fig. 2)."""
    atom_types, directed_links = point_neighborhood_description()
    return MoleculeTypeDescription(atom_types, directed_links)


@pytest.fixture(scope="module", params=[10, 30])
def scaled_geo_db(request):
    """Scaled synthetic geographies for the performance benchmarks."""
    return build_geography(n_states=request.param, edges_per_state=5, n_rivers=4)
