"""Shared harness for the benchmark entry points.

Every ``bench_perf_*`` module used to carry its own copy of the same
scaffolding: the ``sys.path`` preamble that makes ``src/`` importable when
run standalone, the ``--quick`` / ``-o OUT.json`` argument parser, the
JSON-report writer, the result fingerprint, and the aligned table printer.
This module owns all of it; the entry points keep their workloads and their
output schemas, byte for byte.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Tuple

# Make src/ importable both under pytest (where PYTHONPATH already points at
# it — the insert is a harmless duplicate) and as a standalone script.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def report(title: str, rows) -> None:
    """Print a small aligned table under a title (shows up with pytest -s)."""
    print(f"\n=== {title} ===")
    rows = [tuple(str(cell) for cell in row) for row in rows]
    if not rows:
        return
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    for row in rows:
        print("  " + "  ".join(cell.ljust(width) for cell, width in zip(row, widths)))


def fingerprint(result) -> str:
    """A byte-stable rendering of a query result (order-independent)."""
    return json.dumps(
        sorted(json.dumps(d, sort_keys=True, default=str) for d in result.to_dicts())
    )


def timed(fn, *args, **kwargs) -> Tuple[object, float]:
    """Run ``fn(*args, **kwargs)`` and return ``(value, wall-clock seconds)``."""
    started = time.perf_counter()
    value = fn(*args, **kwargs)
    return value, time.perf_counter() - started


def parse_benchmark_args(
    argv: "List[str] | None", default_output: str, description: str
) -> argparse.Namespace:
    """The standard standalone interface: ``[--quick] [-o OUT.json]``."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--quick", action="store_true", help="small workload (CI smoke: a few seconds)"
    )
    parser.add_argument(
        "-o",
        "--output",
        default=default_output,
        help="path of the JSON report (default: %(default)s)",
    )
    return parser.parse_args(argv)


def write_report(path: str, payload) -> None:
    """Write the JSON report and tell the user where it went."""
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"  report written to {path}")
