"""E-MQL — chapter 4: the two worked MQL statements and their algebra semantics.

Parses and executes the paper's two statements, then checks that the MQL
results coincide with the hand-built algebra expressions the paper gives as
their definition (α for the first, α followed by Σ for the second).
"""

from __future__ import annotations

from conftest import report

from repro import MoleculeAlgebra, attr, molecule_type_definition
from repro.mql import MQLInterpreter, execute, parse

STATEMENT_MT_STATE = "SELECT ALL FROM mt_state (state - area - edge - point);"
STATEMENT_NEIGHBORHOOD = (
    "SELECT ALL FROM point - edge - (area - state, net - river) WHERE point.name = 'pn';"
)


def test_mql_statement_mt_state(geo_db, mt_state_desc, benchmark):
    """'SELECT ALL FROM mt_state(state-area-edge-point)' equals α[mt_state, G](C)."""
    result = benchmark(execute, geo_db, STATEMENT_MT_STATE)

    algebra_result = molecule_type_definition(geo_db, "mt_state", mt_state_desc)
    assert len(result) == len(algebra_result)
    mql_roots = {m.root_atom.identifier for m in result}
    algebra_roots = {m.root_atom.identifier for m in algebra_result}
    assert mql_roots == algebra_roots
    by_root = {m.root_atom.identifier: m for m in algebra_result}
    for molecule in result:
        assert molecule.atom_identifiers == by_root[molecule.root_atom.identifier].atom_identifiers
    report(
        "Chapter 4, statement 1",
        [("MQL molecules", len(result)), ("algebra molecules", len(algebra_result))],
    )


def test_mql_statement_point_neighborhood(geo_db, point_neighborhood_desc, benchmark):
    """The symmetric query equals α(point-neighborhood) followed by Σ[point.name='pn']."""
    result = benchmark(execute, geo_db, STATEMENT_NEIGHBORHOOD)

    algebra = MoleculeAlgebra(geo_db)
    neighborhood = algebra.define("point_neighborhood", point_neighborhood_desc)
    restricted = algebra.restrict(neighborhood, attr("name", "point") == "pn")
    assert len(result) == len(restricted.molecule_type) == 1
    mql_molecule = result.molecules[0]
    algebra_molecule = restricted.molecule_type.occurrence[0]
    assert mql_molecule.atom_identifiers == algebra_molecule.atom_identifiers
    states = sorted(atom["code"] for atom in mql_molecule.atoms_of_type("state"))
    assert states == ["GO", "MG", "MS", "SP"]
    report(
        "Chapter 4, statement 2",
        [("states reached", ", ".join(states)),
         ("rivers reached", ", ".join(sorted(a["name"] for a in mql_molecule.atoms_of_type("river"))))],
    )


def test_mql_parse_and_explain(geo_db, benchmark):
    """Parsing + plan explanation exposes the algebra operations behind each clause."""
    interpreter = MQLInterpreter(geo_db)

    def parse_and_explain():
        ast = parse(STATEMENT_NEIGHBORHOOD)
        return ast, interpreter.explain(STATEMENT_NEIGHBORHOOD)

    ast, plan = benchmark(parse_and_explain)

    assert ast.where is not None
    assert any(line.strip().startswith("α") for line in plan)
    assert any(line.strip().startswith("Σ") for line in plan)
    print("\n".join("  " + line for line in plan))


def test_mql_set_operations(geo_db, benchmark):
    """UNION / DIFFERENCE / INTERSECT between query blocks map onto Ω / Δ / Ψ."""
    union_statement = (
        "SELECT ALL FROM mt_state (state - area - edge - point) WHERE state.hectare > 800 "
        "UNION "
        "SELECT ALL FROM mt_state (state - area - edge - point) WHERE state.code = 'SP';"
    )

    result = benchmark(execute, geo_db, union_statement)

    big = execute(geo_db, "SELECT ALL FROM mt_state (state-area-edge-point) WHERE state.hectare > 800;")
    assert len(result) == len(big) + 1  # SP is not among the >800 states
    difference = execute(
        geo_db,
        "SELECT ALL FROM mt_state (state-area-edge-point) "
        "DIFFERENCE "
        "SELECT ALL FROM mt_state (state-area-edge-point) WHERE state.hectare > 800;",
    )
    assert len(difference) == 10 - len(big)
    intersect = execute(
        geo_db,
        "SELECT ALL FROM mt_state (state-area-edge-point) WHERE state.hectare > 800 "
        "INTERSECT "
        "SELECT ALL FROM mt_state (state-area-edge-point) WHERE state.code = 'MG';",
    )
    assert len(intersect) == 1
    report(
        "MQL set operations",
        [("UNION", len(result)), ("DIFFERENCE", len(difference)), ("INTERSECT", len(intersect))],
    )
