"""E-PERF3 — algebraic query optimization (§5 outlook) and rule ablations.

Measures the effect of the rewrite rules on molecule queries over a scaled
geography, all running through the streaming logical→physical plan pipeline
(:mod:`repro.engine`): the naive plan (α → Σ → Π, the literal MQL translation)
against the rewritten plan (restriction push-down + structure pruning), plus
one ablation per rule and the full MQL front-to-back path.  Shape checks:
every rewrite preserves the result molecules, and the fully rewritten plan
touches the fewest atoms.
"""

from __future__ import annotations

import pytest
from bench_common import report

from repro import attr
from repro.core.molecule import MoleculeTypeDescription
from repro.datasets.geography import build_geography, mt_state_description
from repro.mql import MQLInterpreter
from repro.optimizer import (
    DefinePlan,
    Planner,
    ProjectPlan,
    RestrictPlan,
    execute_plan,
)
from repro.optimizer.rules import merge_restrictions, prune_structure, push_down_restriction


def _naive_plan() -> ProjectPlan:
    atom_types, directed_links = mt_state_description()
    description = MoleculeTypeDescription(atom_types, directed_links)
    return ProjectPlan(
        RestrictPlan(DefinePlan("mt_state", description), attr("hectare", "state") > 700),
        ("state", "area"),
    )


@pytest.fixture(scope="module")
def optimizer_db():
    return build_geography(n_states=50, edges_per_state=6, n_rivers=5)


def test_perf3_naive_plan(optimizer_db, benchmark):
    """Baseline: execute the literal α → Σ → Π plan."""
    execution = benchmark(execute_plan, optimizer_db, _naive_plan())

    assert len(execution.molecule_type) > 0
    report(
        "E-PERF3 naive plan",
        [("result molecules", len(execution.molecule_type)),
         ("molecules derived", execution.counters.molecules_derived),
         ("atoms touched", execution.counters.atoms_touched)],
    )


def test_perf3_optimized_plan(optimizer_db, benchmark):
    """The planner's rewritten plan returns the same molecules with less work."""
    planner = Planner(optimizer_db)
    choice = planner.optimize(_naive_plan())

    optimized = benchmark(execute_plan, optimizer_db, choice.optimized)

    naive = execute_plan(optimizer_db, choice.original)
    assert {m.root_atom.identifier for m in optimized.molecule_type} == {
        m.root_atom.identifier for m in naive.molecule_type
    }
    assert optimized.counters.atoms_touched < naive.counters.atoms_touched
    assert "push_down_restriction" in choice.applied_rules
    assert choice.improvement >= 1.0
    report(
        "E-PERF3 optimized plan",
        [("applied rules", ", ".join(choice.applied_rules)),
         ("estimated improvement", f"{choice.improvement:.1f}x"),
         ("atoms touched (naive)", naive.counters.atoms_touched),
         ("atoms touched (optimized)", optimized.counters.atoms_touched)],
    )


def test_perf3_ablation_push_down_only(optimizer_db, benchmark):
    """Ablation: restriction push-down alone already avoids deriving filtered molecules."""
    plan = _naive_plan()
    pushed = push_down_restriction(merge_restrictions(plan).plan).plan

    execution = benchmark(execute_plan, optimizer_db, pushed)

    naive = execute_plan(optimizer_db, plan)
    assert len(execution.molecule_type) == len(naive.molecule_type)
    assert execution.counters.molecules_derived < naive.counters.molecules_derived
    report(
        "E-PERF3 ablation: push-down only",
        [("molecules derived (naive)", naive.counters.molecules_derived),
         ("molecules derived (push-down)", execution.counters.molecules_derived)],
    )


def test_perf3_ablation_prune_only(optimizer_db, benchmark):
    """Ablation: structure pruning alone shrinks every derived molecule."""
    plan = _naive_plan()
    pruned = prune_structure(plan).plan

    execution = benchmark(execute_plan, optimizer_db, pruned)

    naive = execute_plan(optimizer_db, plan)
    assert len(execution.molecule_type) == len(naive.molecule_type)
    assert execution.counters.atoms_touched < naive.counters.atoms_touched
    report(
        "E-PERF3 ablation: prune only",
        [("atoms touched (naive)", naive.counters.atoms_touched),
         ("atoms touched (pruned)", execution.counters.atoms_touched)],
    )


def test_perf3_cost_model_ranks_correctly(optimizer_db, benchmark):
    """The cost model ranks the rewritten plan at or below the naive plan."""
    planner = Planner(optimizer_db)

    choice = benchmark(planner.optimize, _naive_plan())

    assert choice.optimized_cost <= choice.original_cost
    naive = execute_plan(optimizer_db, choice.original)
    optimized = execute_plan(optimizer_db, choice.optimized)
    estimated_better = choice.optimized_cost <= choice.original_cost
    measured_better = optimized.counters.atoms_touched <= naive.counters.atoms_touched
    assert estimated_better == measured_better, "the cost model must rank plans like the measurement"


def test_perf3_mql_statement_through_pipeline(optimizer_db, benchmark):
    """The full MQL path (parse → plan → optimize → stream) beats the literal plan.

    The restriction-push-down query performs measurably fewer atom visits than
    the unoptimized plan variant run through the same executor.
    """
    statement = (
        "SELECT state, area FROM mt_state(state-area-edge-point) WHERE state.hectare > 700;"
    )
    interpreter = MQLInterpreter(optimizer_db)

    result = benchmark(interpreter.execute, statement)

    assert len(result) > 0
    assert "push_down_restriction" in result.plan_choice.applied_rules
    choice = result.plan_choice
    naive = execute_plan(optimizer_db, choice.original)
    assert {m.root_atom.identifier for m in result} == {
        m.root_atom.identifier for m in naive.molecule_type
    }
    assert result.counters.atoms_touched < naive.counters.atoms_touched
    assert result.counters.molecules_derived < naive.counters.molecules_derived
    report(
        "E-PERF3 MQL through the plan pipeline",
        [("applied rules", ", ".join(choice.applied_rules)),
         ("atoms touched (literal plan)", naive.counters.atoms_touched),
         ("atoms touched (optimized MQL)", result.counters.atoms_touched)],
    )
