"""E-FIG4 — Figure 4: the formal specification of the geographic database.

Regenerates the figure's textual specification (atom types ∈ AT*, link types
∈ LT*, database ∈ DB*) from the loaded occurrence and validates membership in
the database domain, plus the two atom-type-operation examples the paper works
through right after the figure (the cartesian product ``border = area × edge``
and the restriction ``σ[hectare>1000]``).
"""

from __future__ import annotations

from conftest import report

from repro import attr, formal_specification
from repro.core.atom_algebra import AtomAlgebra
from repro.schema import validate_database


def test_fig4_formal_specification_text(geo_db, benchmark):
    """The specification names every atom type, link type and the database itself."""
    text = benchmark(formal_specification, geo_db)

    print("\n" + text)
    for atom_type_name in geo_db.atom_type_names:
        assert f"{atom_type_name} = <" in text
        assert "∈ AT*" in text
    for link_type_name in geo_db.link_type_names:
        assert f"{link_type_name} = <" in text
    assert "∈ DB*" in text
    assert geo_db.name in text


def test_fig4_database_domain_membership(geo_db, benchmark):
    """The loaded database is a valid element of DB* (no dangling links, valid domains)."""
    validation = benchmark(validate_database, geo_db)

    assert validation.is_valid, validation.violations
    report(
        "Figure 4: database-domain validation",
        [
            ("atoms checked", validation.checked_atoms),
            ("links checked", validation.checked_links),
            ("violations", len(validation.violations)),
        ],
    )


def test_fig4_atom_type_operation_examples(geo_db, benchmark):
    """The §3.1 examples: border = ×(area, edge) and σ[hectare>1000](state)."""

    def run_examples():
        algebra = AtomAlgebra(geo_db)
        border = algebra.product("area", "edge", name="border")
        big = algebra.restrict("state", attr("hectare") > 900, name="big_states")
        return border, big

    border, big = benchmark(run_examples)

    # The cartesian product concatenates the descriptions ...
    assert len(border.atom_type.description) == (
        len(geo_db.atyp("area").description) + len(geo_db.atyp("edge").description)
    )
    # ... produces |area| x |edge| atoms ...
    assert len(border.atom_type) == len(geo_db.atyp("area")) * len(geo_db.atyp("edge"))
    # ... and inherits the link types of both operands.
    inherited_names = {lt.name.split("~", 1)[0] for lt in border.inherited_link_types}
    assert {"state-area", "area-edge", "net-edge", "edge-point"} <= inherited_names
    # The restriction keeps exactly the states above the threshold.
    assert {atom["code"] for atom in big.atom_type} == {"BA"}
    report(
        "Figure 4: atom-type operation examples",
        [
            ("operation", "result atoms", "inherited link types"),
            ("border = ×(area, edge)", len(border.atom_type), len(border.inherited_link_types)),
            ("σ[hectare>900](state)", len(big.atom_type), len(big.inherited_link_types)),
        ],
    )
