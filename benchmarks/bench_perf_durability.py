"""E-PERF6 — durability: WAL fsync policies vs. in-memory, and recovery time.

Measures what the write-ahead log costs and what it buys:

* **writer throughput** — the E-PERF5 writer burst (INSERT / MODIFY / DELETE
  rounds over the bill-of-materials dataset) on the in-memory baseline vs.
  durable engines under the three fsync policies (``off`` / ``batch`` /
  ``always``), reporting wall-clock overheads and the WAL telemetry
  (records, bytes, fsyncs) of each policy;
* **recovery time vs. log length** — engines whose logs hold increasing
  numbers of commit records are reopened cold; recovery wall-clock must grow
  with the log, replay every record, and reproduce a byte-identical store
  state (asserted per point);
* **checkpointing** — after ``checkpoint()`` the log is empty and a reopen
  replays zero records while preserving the same state.

Run standalone to emit ``BENCH_durability.json``::

    python benchmarks/bench_perf_durability.py [--quick] [-o OUT.json]
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List

from bench_common import parse_benchmark_args, write_report

from repro.core.atom import reset_surrogate_counter
from repro.datasets.bill_of_materials import build_bill_of_materials
from repro.storage import DurabilityConfig, PrimaEngine

FSYNC_POLICIES = ("off", "batch", "always")


def writer_round(engine: PrimaEngine, index: int) -> None:
    """One writer burst: create, re-price and retire a transient part."""
    code = f"W{index:05d}"
    engine.query(
        f"INSERT part VALUES {{part_no: '{code}', description: 'writer part', "
        f"level: 9, cost: {100 + index}}};"
    )
    engine.query(
        f"MODIFY part FROM part SET cost = {200 + index} WHERE part.part_no = '{code}';"
    )
    engine.query(f"DELETE FROM part WHERE part.part_no = '{code}';")


def build_engine(depth: int, fan_out: int, directory=None, fsync: str = "batch") -> PrimaEngine:
    reset_surrogate_counter()
    database = build_bill_of_materials(depth=depth, fan_out=fan_out, share_every=3)
    durability = (
        DurabilityConfig(directory, fsync=fsync) if directory is not None else None
    )
    engine = PrimaEngine.from_database(database, durability=durability)
    engine.query("SELECT ALL FROM part WHERE part.cost > 0;")  # warm caches
    return engine


def store_state(engine: PrimaEngine) -> str:
    """A byte-stable fingerprint of the engine's stores."""
    atoms = {
        name: {atom.identifier: atom.values for atom in store}
        for name, store in engine._atom_stores.items()
    }
    links = {
        name: sorted(sorted(link.given_order) for link in store)
        for name, store in engine._link_stores.items()
    }
    return json.dumps({"atoms": atoms, "links": links}, sort_keys=True, default=str)


def run_writers(engine: PrimaEngine, rounds: int) -> float:
    started = time.perf_counter()
    for index in range(rounds):
        writer_round(engine, index)
    return time.perf_counter() - started


# ------------------------------------------------------------ measurements


def measure_policies(rounds: int, depth: int, fan_out: int, base_dir: Path) -> Dict[str, object]:
    """Writer throughput: in-memory baseline vs. the three fsync policies."""
    baseline_engine = build_engine(depth, fan_out)
    baseline_seconds = run_writers(baseline_engine, rounds)
    policies: Dict[str, object] = {}
    for policy in FSYNC_POLICIES:
        directory = base_dir / f"policy-{policy}"
        engine = build_engine(depth, fan_out, directory=directory, fsync=policy)
        seconds = run_writers(engine, rounds)
        report = engine.maintenance_report()
        engine.close()
        policies[policy] = {
            "writer_seconds": seconds,
            "overhead": seconds / max(baseline_seconds, 1e-9),
            "wal_records": report["wal_records"],
            "wal_bytes": report["wal_bytes"],
            "wal_syncs": report["wal_syncs"],
        }
    return {
        "rounds": rounds,
        "baseline_writer_seconds": baseline_seconds,
        "policies": policies,
    }


def measure_recovery(log_lengths: List[int], base_dir: Path) -> List[Dict[str, object]]:
    """Recovery wall-clock and parity for increasing WAL lengths."""
    points: List[Dict[str, object]] = []
    for commits in log_lengths:
        directory = base_dir / f"recovery-{commits}"
        engine = build_engine(depth=3, fan_out=2, directory=directory, fsync="off")
        for index in range(commits):
            engine.query(
                f"INSERT part VALUES {{part_no: 'R{index:05d}', description: 'r', "
                f"level: 8, cost: {index}}};"
            )
        expected = store_state(engine)
        wal_records = engine.maintenance_report()["wal_records"]
        wal_bytes = engine.maintenance_report()["wal_bytes"]
        engine.close()
        reset_surrogate_counter()
        started = time.perf_counter()
        recovered = PrimaEngine("prima", durability=DurabilityConfig(directory))
        seconds = time.perf_counter() - started
        identical = store_state(recovered) == expected
        replayed = recovered.recovery.records_replayed
        recovered.close()
        points.append(
            {
                "commits": commits,
                "wal_records": wal_records,
                "wal_bytes": wal_bytes,
                "recovery_seconds": seconds,
                "records_replayed": replayed,
                "identical": identical,
            }
        )
    return points


def measure_checkpoint(base_dir: Path) -> Dict[str, object]:
    """Checkpoint protocol: truncated log, zero-replay reopen, same state."""
    directory = base_dir / "checkpoint"
    engine = build_engine(depth=3, fan_out=2, directory=directory, fsync="off")
    for index in range(20):
        engine.query(
            f"INSERT part VALUES {{part_no: 'C{index:05d}', description: 'c', "
            f"level: 8, cost: {index}}};"
        )
    before_truncate = engine.maintenance_report()["wal_bytes"]
    engine.checkpoint()
    after_truncate = engine.maintenance_report()["wal_bytes"]
    expected = store_state(engine)
    engine.close()
    reset_surrogate_counter()
    started = time.perf_counter()
    recovered = PrimaEngine("prima", durability=DurabilityConfig(directory))
    seconds = time.perf_counter() - started
    result = {
        "wal_bytes_before_checkpoint": before_truncate,
        "wal_bytes_after_checkpoint": after_truncate,
        "reopen_seconds": seconds,
        "records_replayed": recovered.recovery.records_replayed,
        "identical": store_state(recovered) == expected,
    }
    recovered.close()
    return result


def compare(rounds: int, depth: int, fan_out: int, log_lengths: List[int]) -> Dict[str, object]:
    base_dir = Path(tempfile.mkdtemp(prefix="bench_durability_"))
    try:
        throughput = measure_policies(rounds, depth, fan_out, base_dir)
        recovery = measure_recovery(log_lengths, base_dir)
        checkpoint = measure_checkpoint(base_dir)
    finally:
        shutil.rmtree(base_dir, ignore_errors=True)
    return {
        "experiment": "E-PERF6 durability (WAL fsync policies + crash recovery)",
        "depth": depth,
        "fan_out": fan_out,
        "throughput": throughput,
        "recovery": recovery,
        "checkpoint": checkpoint,
        "recovery_identical": all(point["identical"] for point in recovery)
        and checkpoint["identical"],
        "checkpoint_truncates": checkpoint["wal_bytes_after_checkpoint"] == 0
        and checkpoint["records_replayed"] == 0,
    }


# ------------------------------------------------------------- shape checks


def test_perf6_policies_log_the_same_records_with_different_sync_costs(tmp_path):
    report = measure_policies(rounds=3, depth=3, fan_out=2, base_dir=tmp_path)
    policies = report["policies"]
    records = {policies[p]["wal_records"] for p in FSYNC_POLICIES}
    assert len(records) == 1, "the fsync policy must not change what is logged"
    assert policies["off"]["wal_syncs"] == 0
    assert policies["always"]["wal_syncs"] >= policies["batch"]["wal_syncs"]
    assert policies["always"]["wal_records"] > 0


def test_perf6_recovery_is_byte_identical_and_replays_the_log(tmp_path):
    points = measure_recovery([5, 15], base_dir=tmp_path)
    assert all(point["identical"] for point in points)
    assert points[1]["records_replayed"] > points[0]["records_replayed"]
    assert points[1]["wal_bytes"] > points[0]["wal_bytes"]


def test_perf6_checkpoint_empties_the_log_and_preserves_state(tmp_path):
    result = measure_checkpoint(base_dir=tmp_path)
    assert result["identical"]
    assert result["wal_bytes_before_checkpoint"] > 0
    assert result["wal_bytes_after_checkpoint"] == 0
    assert result["records_replayed"] == 0


# --------------------------------------------------------------- standalone


def main(argv: "List[str] | None" = None) -> int:
    args = parse_benchmark_args(argv, "BENCH_durability.json", __doc__.splitlines()[0])
    rounds, depth, fan_out = (8, 3, 2) if args.quick else (40, 4, 2)
    log_lengths = [20, 60] if args.quick else [50, 150, 400]
    report = compare(rounds=rounds, depth=depth, fan_out=fan_out, log_lengths=log_lengths)
    throughput = report["throughput"]
    print(
        f"E-PERF6 durability — {throughput['rounds']} writer rounds "
        f"(depth={depth}, fan_out={fan_out})"
    )
    print(f"  in-memory baseline:  {throughput['baseline_writer_seconds']:.3f}s")
    for policy in FSYNC_POLICIES:
        entry = throughput["policies"][policy]
        print(
            f"  fsync={policy:<7} {entry['writer_seconds']:.3f}s "
            f"({entry['overhead']:.2f}x), {entry['wal_records']} records / "
            f"{entry['wal_bytes']} bytes / {entry['wal_syncs']} fsyncs"
        )
    for point in report["recovery"]:
        print(
            f"  recovery of {point['records_replayed']:>4} records "
            f"({point['wal_bytes']} bytes): {point['recovery_seconds']:.3f}s, "
            f"identical={point['identical']}"
        )
    checkpoint = report["checkpoint"]
    print(
        f"  checkpoint: log {checkpoint['wal_bytes_before_checkpoint']} -> "
        f"{checkpoint['wal_bytes_after_checkpoint']} bytes, reopen replays "
        f"{checkpoint['records_replayed']} records in {checkpoint['reopen_seconds']:.3f}s"
    )
    write_report(args.output, report)
    if not report["recovery_identical"] or not report["checkpoint_truncates"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
