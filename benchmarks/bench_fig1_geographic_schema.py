"""E-FIG1 — Figure 1: the sample geographic application.

Regenerates the figure's three layers as executable artifacts:

* the ER diagram (entity and relationship types),
* the MAD diagram obtained by the one-to-one mapping (atom and link types),
* the atom networks (the database occurrence) with link-degree statistics.

Shape checks: the ER→MAD mapping is one-to-one on type names and needs zero
auxiliary structures, whereas the ER→relational mapping needs one junction
relation per n:m relationship type.
"""

from __future__ import annotations

from conftest import report

from repro import load_geography
from repro.er import er_to_mad, er_to_relational_schemas
from repro.er.model import geographic_er_schema
from repro.er.to_mad import er_to_mad_report
from repro.er.to_relational import auxiliary_relation_count, mad_auxiliary_structure_count
from repro.storage import AtomNetwork


def test_fig1_er_to_mad_mapping(benchmark):
    """The ER schema of Fig. 1 maps one-to-one onto the MAD schema."""
    er = geographic_er_schema()

    mad = benchmark(er_to_mad, er)

    assert len(mad.atom_types) == len(er.entity_types)
    assert len(mad.link_types) == len(er.relationship_types)
    mapping = er_to_mad_report(er, mad)
    assert all("MISSING" not in kind for kind, _ in mapping.values())
    # Identity on names — the operational meaning of "one-to-one".
    assert {entity.name for entity in er.entity_types} == set(mad.atom_type_names)
    assert {rel.name for rel in er.relationship_types} == set(mad.link_type_names)

    relational = er_to_relational_schemas(er)
    junctions = auxiliary_relation_count(er)
    report(
        "Figure 1: auxiliary structures needed per model",
        [
            ("model", "types", "auxiliary structures"),
            ("MAD", len(mad.atom_types) + len(mad.link_types), mad_auxiliary_structure_count(er)),
            ("relational", len(relational), junctions),
        ],
    )
    assert junctions == 3  # area-edge, net-edge, edge-point are n:m
    assert mad_auxiliary_structure_count(er) == 0


def test_fig1_load_occurrence(benchmark):
    """Loading the Brazil occurrence produces the atom networks of Fig. 1."""
    db = benchmark(load_geography)

    assert db.is_valid()
    assert len(db.atyp("state")) == 10
    assert len(db.atyp("river")) == 3
    assert len(db.atyp("city")) == 10
    # Every state has exactly one area and every river exactly one net.
    assert len(db.ltyp("state-area")) == 10
    assert len(db.ltyp("river-net")) == 3
    report(
        "Figure 1: occurrence sizes",
        [("atom type", "atoms")] + sorted(db.statistics()["atom_types"].items()),
    )


def test_fig1_network_statistics(geo_db, benchmark):
    """The atom networks form meshed structures: edges are linked to areas, nets and points."""
    network = benchmark(lambda: AtomNetwork(geo_db))

    stats = network.degree_statistics()
    report(
        "Figure 1: link-degree statistics per atom type",
        [("atom type", "atoms", "mean degree", "max degree")]
        + [
            (name, int(s["atoms"]), f"{s['mean']:.1f}", int(s["max"]))
            for name, s in sorted(stats.items())
        ],
    )
    # Edges are the meeting point of the geographic model: they connect to
    # points and to areas and/or nets, so their mean degree is the largest.
    assert stats["edge"]["mean"] >= stats["state"]["mean"]
    assert network.shared_atom_count("area", "net") >= 5  # Parana border edges
    # The largest meshed structure spans several application objects: it
    # contains states, rivers and the whole shared geographic model between them.
    components = network.connected_components()
    largest_types = {network.atom_type_of(identifier) for identifier in components[0]}
    assert {"state", "river", "area", "net", "edge", "point"} <= largest_types
    assert len(components[0]) >= geo_db.atom_count() / 3
