"""E-PERF8 — interval-encoded structure index: range scans vs. fixpoint recursion.

Benchmarks the ``CREATE STRUCTURE INDEX`` acceleration path on synthetic
bill-of-materials shapes, always against the legacy fixpoint engine running
the *same MQL* on an identical database:

* **deep closures (the headline)** — a selective recursive query over chains
  ≥ 64 levels deep (``WHERE part.part_no = '<deepest leaf>'``).  The interval
  index answers the existential predicate with a containment check per root
  and range-scans only the qualifying closures; the fixpoint engine must
  derive every molecule first.  The report requires **≥ 10×** here;
* **wide full expansion (honest)** — the unfiltered parts explosion over a
  ≥ 10k-node assembly.  Both engines materialize every member, so the index
  only converts link-hopping into pre-order slices; the smaller speedup is
  published as-is, not folded into the headline;
* **incremental maintenance under a DML burst** — an identical
  graft/prune sequence driven through the indexed and the plain engine;
  the report publishes the wall-clock overhead and the index's own
  telemetry (rebuilds, gap events, snapshot fallbacks) rather than
  pretending maintenance is free;
* **byte-identical results** — every measured query is fingerprint-compared
  between the two engines, before and after the burst, and the EXPLAIN
  output must show the costed interval-scan choice.

Run standalone to emit ``BENCH_structure_index.json``::

    python benchmarks/bench_perf_structure_index.py [--quick] [-o OUT.json]
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from bench_common import fingerprint, parse_benchmark_args, write_report

from repro.core.atom import reset_surrogate_counter
from repro.datasets.bill_of_materials import build_bill_of_materials
from repro.storage.engine import PrimaEngine

#: The unfiltered parts explosion (every part is a root of one molecule).
FULL_EXPANSION = "SELECT ALL FROM RECURSIVE part [composition] DOWN;"

#: The headline requirement on the deep selective closure.
DEEP_SPEEDUP_TARGET = 10.0


def build_pair(
    depth: int, fan_out: int, n_roots: int
) -> Tuple[PrimaEngine, PrimaEngine, str]:
    """Two engines over identical BOMs — fixpoint-only and interval-indexed.

    Each build resets the surrogate counter so link identifiers line up and
    the result fingerprints are comparable across the two engines.  Returns
    the engines plus the ``part_no`` of the deepest leaf of the first chain
    (the selective-query target).
    """
    reset_surrogate_counter()
    database = build_bill_of_materials(depth=depth, fan_out=fan_out, n_roots=n_roots)
    max_level = max(atom.get("level") for atom in database.atyp("part"))
    leaf = min(
        atom.get("part_no")
        for atom in database.atyp("part")
        if atom.get("level") == max_level
    )
    fixpoint = PrimaEngine.from_database(database)
    reset_surrogate_counter()
    indexed = PrimaEngine.from_database(
        build_bill_of_materials(depth=depth, fan_out=fan_out, n_roots=n_roots)
    )
    indexed.create_structure_index("part", "composition", "down")
    return fixpoint, indexed, leaf


def deep_closure_query(leaf: str) -> str:
    return (
        "SELECT ALL FROM RECURSIVE part [composition] DOWN "
        f"WHERE part.part_no = '{leaf}';"
    )


def run_repeats(engine: PrimaEngine, statement: str, runs: int) -> Tuple[str, float]:
    """Fingerprint of the (warmed) result and total seconds for *runs* runs."""
    digest = fingerprint(engine.query(statement))  # warm caches / build index
    started = time.perf_counter()
    for _ in range(runs):
        engine.query(statement)
    return digest, time.perf_counter() - started


def measure_queries(
    depth: int, fan_out: int, n_roots: int, runs: int, statement_for=None
) -> Dict[str, object]:
    """Time one statement on the fixpoint vs. the indexed engine."""
    fixpoint, indexed, leaf = build_pair(depth, fan_out, n_roots)
    statement = statement_for(leaf) if statement_for else FULL_EXPANSION
    base_digest, base_seconds = run_repeats(fixpoint, statement, runs)
    index_digest, index_seconds = run_repeats(indexed, statement, runs)
    return {
        "depth": depth,
        "fan_out": fan_out,
        "n_roots": n_roots,
        "parts": len(fixpoint.scan("part")),
        "statement": statement,
        "runs": runs,
        "fixpoint_seconds": base_seconds,
        "interval_seconds": index_seconds,
        "speedup": base_seconds / max(index_seconds, 1e-9),
        "identical": base_digest == index_digest,
    }


def graft_round(engine: PrimaEngine, index: int, n_roots: int) -> None:
    """One structure-churn round: graft a leaf under a rotating root and
    prune every third graft again (the prune forces a re-encode)."""
    leaf = f"G{index:05d}"
    engine.store_atom("part", identifier=leaf, part_no=leaf, level=1, cost=1.0)
    engine.connect("composition", f"P{(index % n_roots) + 1:05d}", leaf)
    if index % 3 == 0:
        engine.delete_atom("part", leaf)


def measure_maintenance(
    depth: int, fan_out: int, n_roots: int, rounds: int
) -> Dict[str, object]:
    """Drive an identical DML burst through both engines and compare costs."""
    fixpoint, indexed, leaf = build_pair(depth, fan_out, n_roots)
    statement = deep_closure_query(leaf)
    fixpoint.query(statement)
    indexed.query(statement)  # build the encoding before the burst

    started = time.perf_counter()
    for index in range(rounds):
        graft_round(fixpoint, index, n_roots)
    baseline_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for index in range(rounds):
        graft_round(indexed, index, n_roots)
    indexed_seconds = time.perf_counter() - started

    post_identical = fingerprint(fixpoint.query(statement)) == fingerprint(
        indexed.query(statement)
    )
    report = indexed.maintenance_report()
    return {
        "rounds": rounds,
        "baseline_seconds": baseline_seconds,
        "indexed_seconds": indexed_seconds,
        "overhead": indexed_seconds / max(baseline_seconds, 1e-9),
        "post_burst_identical": post_identical,
        "structure_builds": report["structure_builds"],
        "structure_gap_events": report["structure_gap_events"],
        "structure_snapshot_gaps": report["structure_snapshot_gaps"],
        "generation_current": report["structure_generation"] == report["generation"],
    }


def capture_explain(depth: int, fan_out: int, n_roots: int) -> List[str]:
    """EXPLAIN of the deep selective query on the indexed engine."""
    _, indexed, leaf = build_pair(depth, fan_out, n_roots)
    statement = deep_closure_query(leaf)
    indexed.query(statement)  # record an observed recursion profile
    return indexed.query("EXPLAIN " + statement).explanation.splitlines()


def compare(
    deep: Tuple[int, int, int],
    wide: Tuple[int, int, int],
    runs: int,
    rounds: int,
) -> Dict[str, object]:
    deep_result = measure_queries(*deep, runs=runs, statement_for=deep_closure_query)
    wide_result = measure_queries(*wide, runs=max(1, runs // 2))
    maintenance = measure_maintenance(*deep, rounds=rounds)
    explain = capture_explain(deep[0] // 2, deep[1], deep[2])
    return {
        "experiment": "E-PERF8 structure index (interval-encoded recursion)",
        "deep": deep_result,
        "wide": wide_result,
        "maintenance": maintenance,
        "explain": explain,
        "deep_speedup_target": DEEP_SPEEDUP_TARGET,
        "speedup_target_met": deep_result["speedup"] >= DEEP_SPEEDUP_TARGET,
        "results_identical": (
            deep_result["identical"]
            and wide_result["identical"]
            and maintenance["post_burst_identical"]
        ),
        "honesty_note": (
            "the >=10x claim holds for selective deep closures, where the "
            "index prunes non-qualifying roots before materialization; the "
            "unfiltered wide expansion and the DML-burst overhead are "
            "published unfiltered above"
        ),
    }


# ------------------------------------------------------------- shape checks


def test_perf8_deep_closure_is_byte_identical_and_faster():
    """The interval scan returns the fixpoint's bytes and beats its clock.

    The pytest workload is deliberately small, so the bound here is only
    > 1×; the standalone run (deeper chains, more roots) is the
    authoritative ≥ 10× measurement.
    """
    result = measure_queries(
        depth=32, fan_out=1, n_roots=6, runs=2, statement_for=deep_closure_query
    )
    assert result["identical"]
    assert result["speedup"] > 1.0, (
        f"deep-closure speedup {result['speedup']:.2f}x on the pytest workload"
    )


def test_perf8_explain_reports_the_interval_scan_choice():
    lines = capture_explain(depth=16, fan_out=1, n_roots=2)
    explanation = "\n".join(lines)
    assert "accelerate_recursion" in explanation
    assert "interval scan" in explanation
    assert "interval index part via composition down" in explanation


def test_perf8_maintenance_keeps_parity_and_reports_its_costs():
    result = measure_maintenance(depth=16, fan_out=1, n_roots=3, rounds=9)
    assert result["post_burst_identical"]
    assert result["structure_builds"] >= 1
    assert result["generation_current"]


def test_perf8_wide_expansion_is_byte_identical():
    result = measure_queries(depth=3, fan_out=4, n_roots=1, runs=1)
    assert result["identical"]
    assert result["speedup"] > 0


# --------------------------------------------------------------- standalone


def main(argv: "List[str] | None" = None) -> int:
    args = parse_benchmark_args(
        argv, "BENCH_structure_index.json", __doc__.splitlines()[0]
    )
    if args.quick:
        deep, wide, runs, rounds = (64, 1, 8), (4, 6, 1), 3, 15
    else:
        deep, wide, runs, rounds = (96, 1, 16), (4, 10, 1), 5, 60
    result = compare(deep=deep, wide=wide, runs=runs, rounds=rounds)
    deep_r, wide_r, maint = result["deep"], result["wide"], result["maintenance"]
    print(
        f"E-PERF8 structure index — deep chains {deep_r['depth']} levels x "
        f"{deep_r['n_roots']} roots ({deep_r['parts']} parts), wide assembly "
        f"{wide_r['parts']} parts"
    )
    print(
        f"  deep selective closure: fixpoint {deep_r['fixpoint_seconds']:.3f}s, "
        f"interval {deep_r['interval_seconds']:.3f}s -> "
        f"{deep_r['speedup']:.1f}x (target >= {DEEP_SPEEDUP_TARGET:.0f}x), "
        f"identical={deep_r['identical']}"
    )
    print(
        f"  wide full expansion:    fixpoint {wide_r['fixpoint_seconds']:.3f}s, "
        f"interval {wide_r['interval_seconds']:.3f}s -> "
        f"{wide_r['speedup']:.1f}x (honest, unfiltered), "
        f"identical={wide_r['identical']}"
    )
    print(
        f"  DML burst ({maint['rounds']} rounds): plain {maint['baseline_seconds']:.3f}s, "
        f"indexed {maint['indexed_seconds']:.3f}s ({maint['overhead']:.2f}x), "
        f"rebuilds={maint['structure_builds']}, gaps={maint['structure_gap_events']}, "
        f"parity={maint['post_burst_identical']}"
    )
    write_report(args.output, result)
    if not result["results_identical"]:
        return 1
    if not result["speedup_target_met"]:
        print(
            f"  FAIL: deep-closure speedup {deep_r['speedup']:.1f}x below the "
            f"{DEEP_SPEEDUP_TARGET:.0f}x requirement"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
