"""E-PERF4 — mixed read/write workloads: incremental maintenance vs. rebuild.

Interleaves molecule queries with MQL DML (INSERT / MODIFY / DELETE) over a
scaled geography, comparing the engine's two cache-maintenance strategies:

* ``incremental`` (default) — every write is folded into the cached
  snapshot, hash indexes, atom network and planner statistics;
* ``rebuild`` — the historical invalidate-everything behaviour: each write
  discards all caches and the next query re-exports the snapshot, rebuilds
  the network and re-creates the interpreter.

Shape checks: both modes return identical query results; in steady state the
incremental engine performs **zero** full rebuilds (build counters stay at 1
after warm-up) and beats the rebuild engine's wall-clock.

Run standalone to emit ``BENCH_mixed_workload.json``::

    python benchmarks/bench_perf_mixed_workload.py [--quick] [-o OUT.json]
"""

from __future__ import annotations

import time
from typing import Dict, List

from bench_common import parse_benchmark_args, write_report

from repro.datasets.geography import build_geography
from repro.storage.engine import PrimaEngine

#: One workload round: two selective queries, an insert, a modify, a delete.
QUERY_STATEMENTS = (
    "SELECT ALL FROM state-area WHERE state.code = 'S1';",
    "SELECT ALL FROM state-area-edge WHERE state.hectare > 500;",
)


def run_mixed_workload(engine: PrimaEngine, rounds: int) -> Dict[str, object]:
    """Drive *rounds* of interleaved query/insert/modify/delete statements."""
    sizes: List[int] = []
    started = time.perf_counter()
    for index in range(rounds):
        code = f"W{index}"
        engine.query(
            "INSERT state - area VALUES "
            f"{{name: 'w{index}', code: '{code}', hectare: {600 + index}, "
            f"area: {{area_id: 'aw{index}', kind: 'state-border'}}}};"
        )
        for statement in QUERY_STATEMENTS:
            sizes.append(len(engine.query(statement)))
        engine.query(
            f"MODIFY state FROM state - area SET hectare = {100 + index} "
            f"WHERE state.code = '{code}';"
        )
        sizes.append(len(engine.query(f"SELECT ALL FROM state-area WHERE state.code = '{code}';")))
        engine.query(f"DELETE FROM state - area WHERE state.code = '{code}';")
    elapsed = time.perf_counter() - started
    return {
        "elapsed_seconds": elapsed,
        "statements": rounds * (3 + len(QUERY_STATEMENTS) + 1),
        "result_sizes": sizes,
        "maintenance": engine.maintenance_statistics(),
    }


def build_engine(mode: str, n_states: int) -> PrimaEngine:
    database = build_geography(n_states=n_states, edges_per_state=5, n_rivers=4)
    engine = PrimaEngine.from_database(database, maintenance=mode)
    engine.query("SELECT ALL FROM state-area WHERE state.code = 'S1';")  # warm caches
    return engine


def compare_modes(rounds: int, n_states: int) -> Dict[str, object]:
    """Run the workload under both maintenance modes and compare."""
    runs: Dict[str, Dict[str, object]] = {}
    for mode in ("incremental", "rebuild"):
        engine = build_engine(mode, n_states)
        runs[mode] = run_mixed_workload(engine, rounds)
    incremental, rebuild = runs["incremental"], runs["rebuild"]
    return {
        "experiment": "E-PERF4 mixed read/write workload",
        "rounds": rounds,
        "n_states": n_states,
        "incremental": incremental,
        "rebuild": rebuild,
        "speedup": rebuild["elapsed_seconds"] / max(incremental["elapsed_seconds"], 1e-9),
        "results_identical": incremental["result_sizes"] == rebuild["result_sizes"],
    }


# ------------------------------------------------------------- shape checks


def test_perf4_incremental_steady_state_has_zero_rebuilds():
    """After warm-up, a mixed workload causes no snapshot/network/index rebuilds."""
    engine = build_engine("incremental", n_states=10)
    run_mixed_workload(engine, rounds=5)
    report = engine.maintenance_statistics()
    assert report["snapshot_builds"] == 1
    assert report["network_builds"] == 1
    assert report["interpreter_builds"] == 1
    assert report["network_rebuilds"] == 1  # the constructor pass only
    assert report["index_generation"] == report["generation"]
    assert report["events_applied"] > 0


def test_perf4_rebuild_mode_rebuilds_per_write():
    """The baseline pays one full cache rebuild per write burst."""
    engine = build_engine("rebuild", n_states=10)
    run_mixed_workload(engine, rounds=5)
    report = engine.maintenance_statistics()
    assert report["snapshot_builds"] > 5


def test_perf4_modes_return_identical_results():
    comparison = compare_modes(rounds=4, n_states=10)
    assert comparison["results_identical"]


def test_perf4_incremental_beats_rebuild_wall_clock():
    comparison = compare_modes(rounds=8, n_states=25)
    assert comparison["results_identical"]
    assert comparison["speedup"] > 1.0, (
        "incremental maintenance should beat invalidate-everything: "
        f"speedup={comparison['speedup']:.2f}"
    )


# --------------------------------------------------------------- standalone


def main(argv: "List[str] | None" = None) -> int:
    args = parse_benchmark_args(
        argv, "BENCH_mixed_workload.json", __doc__.splitlines()[0]
    )
    rounds, n_states = (8, 20) if args.quick else (40, 60)
    comparison = compare_modes(rounds=rounds, n_states=n_states)
    incremental = comparison["incremental"]
    rebuild = comparison["rebuild"]
    print(f"E-PERF4 mixed workload — {rounds} rounds over {comparison['n_states']} states")
    print(
        f"  incremental: {incremental['elapsed_seconds']:.3f}s, "
        f"builds={incremental['maintenance']['snapshot_builds']}, "
        f"events={incremental['maintenance']['events_applied']}"
    )
    print(
        f"  rebuild:     {rebuild['elapsed_seconds']:.3f}s, "
        f"builds={rebuild['maintenance']['snapshot_builds']}"
    )
    print(f"  speedup: {comparison['speedup']:.2f}x, identical={comparison['results_identical']}")
    write_report(args.output, comparison)
    if not comparison["results_identical"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
