"""E-PERF2 — recursive molecules on bill-of-material graphs (§5 outlook).

Compares recursive molecule expansion (parts explosion over the reflexive
``composition`` link type) against the iterative relational transitive closure
over the corresponding junction relation, for growing depth and fan-out, and
checks that both compute the same closure.  Also exercises the symmetric
where-used (super-component) view, which needs no extra schema on the MAD
side, and the same explosion phrased as an MQL ``RECURSIVE`` statement running
through the streaming plan pipeline.
"""

from __future__ import annotations

import pytest
from bench_common import report

from repro import RecursiveDescription, build_bill_of_materials, recursive_molecule_type
from repro.core.recursion import expand_recursive
from repro.datasets.bill_of_materials import root_parts
from repro.mql import MQLInterpreter
from repro.relational import map_database
from repro.relational.query import relational_transitive_closure


@pytest.mark.parametrize("depth,fan_out", [(3, 3), (5, 3), (7, 2)])
def test_perf2_recursive_molecule_explosion(benchmark, depth, fan_out):
    """Parts explosion via recursive molecule expansion."""
    db = build_bill_of_materials(depth=depth, fan_out=fan_out, share_every=4)
    description = RecursiveDescription("part", "composition", "down")
    roots = root_parts(db)

    molecule = benchmark(expand_recursive, db, description, roots[0])

    assert molecule.depth() == depth
    report(
        f"E-PERF2 (MAD, depth={depth}, fan_out={fan_out})",
        [("parts in database", len(db.atyp("part"))),
         ("components reached", len(molecule) - 1),
         ("explosion depth", molecule.depth())],
    )


@pytest.mark.parametrize("depth,fan_out", [(3, 3), (5, 3), (7, 2)])
def test_perf2_relational_transitive_closure(benchmark, depth, fan_out):
    """The same explosion via iterative joins over the composition junction relation."""
    db = build_bill_of_materials(depth=depth, fan_out=fan_out, share_every=4)
    roots = root_parts(db)
    mapping = map_database(db)

    closures = benchmark(
        relational_transitive_closure, mapping, "composition", [roots[0].identifier]
    )

    description = RecursiveDescription("part", "composition", "down")
    molecule = expand_recursive(db, description, roots[0])
    assert len(closures[roots[0].identifier]) == len(molecule) - 1, (
        "both evaluation strategies must compute the same closure"
    )


def test_perf2_both_views_from_one_link_type(benchmark):
    """Sub-component and super-component views use the same reflexive link type."""
    db = build_bill_of_materials(depth=4, fan_out=3, share_every=3)
    parts = db.atyp("part")
    leaf = max(parts, key=lambda atom: atom["level"])

    def both_views():
        explosion = recursive_molecule_type(
            db, "explosion", RecursiveDescription("part", "composition", "down"), root_parts(db)
        )
        where_used = recursive_molecule_type(
            db, "where_used", RecursiveDescription("part", "composition", "up"), [leaf]
        )
        return explosion, where_used

    explosion, where_used = benchmark(both_views)

    assert len(db.link_types) == 1, "one reflexive link type suffices for both views"
    assert len(explosion.occurrence[0]) > 1
    assert len(where_used.occurrence[0]) > 1
    # The where-used chain of the leaf must end at a top-level assembly.
    top_levels = {atom["level"] for atom in where_used.occurrence[0].atoms}
    assert 0 in top_levels
    report(
        "E-PERF2: symmetric views over the 'composition' link type",
        [("parts explosion of root", len(explosion.occurrence[0]) - 1),
         ("where-used of deepest leaf", len(where_used.occurrence[0]) - 1)],
    )


@pytest.mark.parametrize("depth,fan_out", [(3, 3), (5, 3)])
def test_perf2_recursive_mql_through_pipeline(benchmark, depth, fan_out):
    """The parts explosion as an MQL statement on the plan pipeline.

    The recursive scan streams one expanded molecule per root part and must
    agree with the relational transitive closure on the explosion size.
    """
    db = build_bill_of_materials(depth=depth, fan_out=fan_out, share_every=4)
    interpreter = MQLInterpreter(db)
    statement = "SELECT ALL FROM RECURSIVE part [composition] DOWN WHERE part.level = 0;"

    result = benchmark(interpreter.execute, statement)

    roots = root_parts(db)
    assert len(result) == len(roots)
    closures = relational_transitive_closure(map_database(db), "composition", [roots[0].identifier])
    explosion = result.molecule_type.molecules_rooted_at(roots[0].identifier)[0]
    assert len(closures[roots[0].identifier]) == len(explosion) - 1, (
        "the piped recursive scan must compute the relational closure"
    )
    assert result.counters.molecules_derived == len(db.atyp("part"))
    report(
        f"E-PERF2 MQL RECURSIVE via pipeline (depth={depth}, fan_out={fan_out})",
        [("root explosions", len(result)),
         ("components reached", len(explosion) - 1),
         ("atoms touched", result.counters.atoms_touched)],
    )


@pytest.mark.parametrize("share_every", [0, 2])
def test_perf2_shared_subassemblies(benchmark, share_every):
    """Shared sub-assemblies are represented once and reached from several parents."""
    db = build_bill_of_materials(depth=4, fan_out=3, share_every=share_every, n_roots=2)
    description = RecursiveDescription("part", "composition", "down")

    molecule_type = benchmark(
        recursive_molecule_type, db, "explosion", description, root_parts(db)
    )

    shared = molecule_type.shared_atoms()
    if share_every:
        assert shared, "with sharing enabled, some parts belong to both assemblies' explosions"
    report(
        f"E-PERF2: sharing (share_every={share_every})",
        [("parts", len(db.atyp('part'))),
         ("parts in >1 explosion", len(shared))],
    )
