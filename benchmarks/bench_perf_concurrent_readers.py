"""E-PERF5 — concurrent readers: a pinned recursive-BOM reader vs. DML writers.

Interleaves a long-running reader — the parts explosion over the reflexive
``composition`` link type, pinned with ``PrimaEngine.snapshot_at()`` — with
rounds of MQL DML (INSERT / MODIFY / DELETE on ``part`` atoms), and checks the
MVCC contract end to end:

* **generation stability** — every re-run of the pinned reader returns
  byte-identical results, no matter how much committed DML happened at the
  head in between, while a fresh head query observes the writers' state;
* **writer throughput** — writers pay only the version-chain recording while
  the reader is pinned; wall-clock must stay within ~1.3× of the no-reader
  baseline;
* **garbage collection** — releasing the reader lets the collector truncate
  the version chains: ``versions_live`` drops to 0 and ``versions_collected``
  accounts every entry the pinned reader kept alive.

Run standalone to emit ``BENCH_concurrent_readers.json``::

    python benchmarks/bench_perf_concurrent_readers.py [--quick] [-o OUT.json]
"""

from __future__ import annotations

import time
from typing import Dict, List

from bench_common import fingerprint, parse_benchmark_args, write_report

from repro.datasets.bill_of_materials import build_bill_of_materials
from repro.storage.engine import PrimaEngine

#: The long reader: the full parts explosion of every part (recursive plan).
READER_STATEMENT = "SELECT ALL FROM RECURSIVE part [composition] DOWN;"


def build_engine(depth: int, fan_out: int) -> PrimaEngine:
    database = build_bill_of_materials(depth=depth, fan_out=fan_out, share_every=3)
    engine = PrimaEngine.from_database(database)
    engine.query(READER_STATEMENT)  # warm snapshot / network / interpreter
    return engine


def writer_round(engine: PrimaEngine, index: int) -> None:
    """One writer burst: create, re-price and retire a transient part."""
    code = f"W{index:05d}"
    engine.query(
        f"INSERT part VALUES {{part_no: '{code}', description: 'writer part', "
        f"level: 9, cost: {100 + index}}};"
    )
    engine.query(
        f"MODIFY part FROM part SET cost = {200 + index} WHERE part.part_no = '{code}';"
    )
    engine.query(f"DELETE FROM part WHERE part.part_no = '{code}';")


def run_writers(engine: PrimaEngine, rounds: int) -> float:
    """Drive *rounds* writer bursts; returns the writer wall-clock seconds."""
    started = time.perf_counter()
    for index in range(rounds):
        writer_round(engine, index)
    return time.perf_counter() - started


def run_interleaved(
    engine: PrimaEngine, rounds: int, read_every: int
) -> Dict[str, object]:
    """Writers with a pinned reader re-validating its snapshot every few rounds."""
    handle = engine.snapshot_at()
    reference = fingerprint(handle.query(READER_STATEMENT))
    writer_seconds = 0.0
    reads = 1
    stable = True
    for index in range(rounds):
        started = time.perf_counter()
        writer_round(engine, index)
        writer_seconds += time.perf_counter() - started
        if (index + 1) % read_every == 0:
            stable = stable and fingerprint(handle.query(READER_STATEMENT)) == reference
            reads += 1
    # One final validation after the full write burst, then release the pin.
    stable = stable and fingerprint(handle.query(READER_STATEMENT)) == reference
    reads += 1
    pinned_report = engine.maintenance_report()
    handle.release()
    released_report = engine.maintenance_report()
    return {
        "writer_seconds": writer_seconds,
        "reader_runs": reads,
        "reader_stable": stable,
        "versions_live_while_pinned": pinned_report["versions_live"],
        "versions_live_after_release": released_report["versions_live"],
        "versions_collected": released_report["versions_collected"],
        "oldest_pinned_generation_after_release": released_report[
            "oldest_pinned_generation"
        ],
    }


def compare(rounds: int, depth: int, fan_out: int, read_every: int) -> Dict[str, object]:
    """Baseline writers vs. writers under a pinned reader, on equal engines."""
    baseline_engine = build_engine(depth, fan_out)
    baseline_seconds = run_writers(baseline_engine, rounds)
    interleaved_engine = build_engine(depth, fan_out)
    interleaved = run_interleaved(interleaved_engine, rounds, read_every)
    ratio = interleaved["writer_seconds"] / max(baseline_seconds, 1e-9)
    return {
        "experiment": "E-PERF5 concurrent readers (snapshot-pinned MVCC)",
        "rounds": rounds,
        "depth": depth,
        "fan_out": fan_out,
        "parts": len(baseline_engine.scan("part")),
        "baseline_writer_seconds": baseline_seconds,
        "interleaved": interleaved,
        "writer_slowdown": ratio,
        "reader_stable": interleaved["reader_stable"],
        "chains_truncated": (
            interleaved["versions_collected"] > 0
            and interleaved["versions_live_after_release"] == 0
        ),
    }


# ------------------------------------------------------------- shape checks


def test_perf5_reader_is_generation_stable_under_dml():
    """A pinned reader returns byte-identical results across a DML burst."""
    engine = build_engine(depth=3, fan_out=2)
    with engine.snapshot_at() as handle:
        before = fingerprint(handle.query(READER_STATEMENT))
        head_before = len(engine.query(READER_STATEMENT))
        engine.query(
            "INSERT part VALUES {part_no: 'WX', description: 'w', level: 9, cost: 1};"
        )
        # The head observes the writer; the pinned reader does not.
        assert len(engine.query(READER_STATEMENT)) == head_before + 1
        assert fingerprint(handle.query(READER_STATEMENT)) == before
        engine.query("DELETE FROM part WHERE part.part_no = 'WX';")
        assert fingerprint(handle.query(READER_STATEMENT)) == before


def test_perf5_release_truncates_version_chains():
    """GC drops every version entry once the last reader releases its pin."""
    engine = build_engine(depth=3, fan_out=2)
    handle = engine.snapshot_at()
    run_writers(engine, rounds=3)
    pinned = engine.maintenance_report()
    assert pinned["versions_live"] > 0
    assert pinned["oldest_pinned_generation"] == handle.generation
    handle.release()
    released = engine.maintenance_report()
    assert released["versions_live"] == 0
    assert released["versions_collected"] >= pinned["versions_live"]
    assert released["oldest_pinned_generation"] is None


def test_perf5_unpinned_writers_record_no_versions():
    """Without a pin, writers pay only the generation tick — no chains."""
    engine = build_engine(depth=3, fan_out=2)
    run_writers(engine, rounds=3)
    report = engine.maintenance_report()
    assert report["versions_live"] == 0
    assert report["pins_active"] == 0


def test_perf5_writer_throughput_with_reader():
    """Writers stay within the ~1.3× envelope while a reader is pinned.

    The pytest bound is looser than the report's 1.3× claim: CI boxes jitter,
    and the standalone run (more rounds) is the authoritative measurement.
    """
    comparison = compare(rounds=6, depth=3, fan_out=2, read_every=3)
    assert comparison["reader_stable"]
    assert comparison["chains_truncated"]
    assert comparison["writer_slowdown"] < 2.0, (
        f"writer slowdown {comparison['writer_slowdown']:.2f}x under a pinned reader"
    )


# --------------------------------------------------------------- standalone


def main(argv: "List[str] | None" = None) -> int:
    args = parse_benchmark_args(
        argv, "BENCH_concurrent_readers.json", __doc__.splitlines()[0]
    )
    rounds, depth, fan_out, read_every = (
        (12, 3, 2, 4) if args.quick else (60, 5, 2, 10)
    )
    comparison = compare(rounds=rounds, depth=depth, fan_out=fan_out, read_every=read_every)
    interleaved = comparison["interleaved"]
    print(
        f"E-PERF5 concurrent readers — {rounds} writer rounds over "
        f"{comparison['parts']} parts (depth={depth}, fan_out={fan_out})"
    )
    print(f"  baseline writers:    {comparison['baseline_writer_seconds']:.3f}s")
    print(
        f"  writers with reader: {interleaved['writer_seconds']:.3f}s "
        f"({comparison['writer_slowdown']:.2f}x), reader runs: {interleaved['reader_runs']}"
    )
    print(
        f"  reader stable: {comparison['reader_stable']}, "
        f"versions while pinned: {interleaved['versions_live_while_pinned']}, "
        f"after release: {interleaved['versions_live_after_release']} "
        f"(collected {interleaved['versions_collected']})"
    )
    write_report(args.output, comparison)
    if not comparison["reader_stable"] or not comparison["chains_truncated"]:
        return 1
    if comparison["writer_slowdown"] > 1.35:
        print("  FAIL: writer slowdown exceeds the 1.3x envelope")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
