"""E-THM3 — Theorems 2–3: the molecule-type operations form an algebra.

Audits the closure of α, Σ, Π, X, Ω, Δ (and the derived Ψ): every result is a
valid molecule type over its enlarged database (each molecule satisfies
``mv_graph`` against the result description), and operations can be chained —
including the paper's identity Ψ(mt1, mt2) = Δ(mt1, Δ(mt1, mt2)).
"""

from __future__ import annotations

from conftest import report

from repro import MoleculeAlgebra, attr, molecule_type_definition
from repro.core.derivation import mv_graph
from repro.core.molecule_algebra import molecule_difference, molecule_intersection


def _audit(result) -> None:
    """Every result molecule must satisfy mv_graph over the enlarged database."""
    molecule_type = result.molecule_type
    for molecule in molecule_type:
        ok, reason = mv_graph(result.database, molecule_type.description, molecule)
        assert ok, reason
    assert result.database.is_valid()


def test_thm3_each_operation_closed(geo_db, mt_state_desc, benchmark):
    """Σ, Π, Ω, Δ each produce valid molecule types over enlarged databases."""
    mt_state = molecule_type_definition(geo_db, "mt_state", mt_state_desc)

    def run_operations():
        algebra = MoleculeAlgebra(geo_db)
        restricted = algebra.restrict(mt_state, attr("hectare", "state") > 700)
        projected = algebra.project(mt_state, ["state", "area", "edge"])
        union = algebra.union(mt_state, mt_state)
        difference = algebra.difference(mt_state, restricted.molecule_type)
        return restricted, projected, union, difference

    restricted, projected, union, difference = benchmark(run_operations)

    for result in (restricted, projected, union, difference):
        _audit(result)
    report(
        "Theorems 2-3: closure audit of the molecule operations",
        [
            ("operation", "molecules", "valid"),
            ("Σ hectare>700", len(restricted.molecule_type), "yes"),
            ("Π state,area,edge", len(projected.molecule_type), "yes"),
            ("Ω mt_state ∪ mt_state", len(union.molecule_type), "yes"),
            ("Δ mt_state − big", len(difference.molecule_type), "yes"),
        ],
    )
    # Sanity of cardinalities.
    assert len(union.molecule_type) == len(mt_state)
    assert len(difference.molecule_type) == len(mt_state) - len(restricted.molecule_type)


def test_thm3_intersection_identity(geo_db, mt_state_desc, benchmark):
    """Ψ(mt1, mt2) = Δ(mt1, Δ(mt1, mt2)) — the paper's §3.2 construction."""
    mt_state = molecule_type_definition(geo_db, "mt_state", mt_state_desc)
    algebra = MoleculeAlgebra(geo_db)
    big = algebra.restrict(mt_state, attr("hectare", "state") > 800).molecule_type
    southern = algebra.restrict(
        mt_state, attr("code", "state") == "MG"
    ).molecule_type

    def both_ways():
        direct = molecule_intersection(algebra.database, big, southern)
        inner = molecule_difference(algebra.database, big, southern)
        double = molecule_difference(inner.database, big, inner.molecule_type)
        return direct, double

    direct, double = benchmark(both_ways)

    _audit(direct)
    _audit(double)
    roots = lambda mt: {m.root_atom.identifier for m in mt}  # noqa: E731
    assert roots(direct.molecule_type) == roots(double.molecule_type) == {"MG"}


def test_thm3_product_closed(geo_db, benchmark):
    """X produces one result molecule per operand pair and remains a valid molecule type."""
    states = molecule_type_definition(
        geo_db, "states_only",
        ["state", "area"], [("state-area", "state", "area")],
    )
    rivers = molecule_type_definition(
        geo_db, "rivers_only",
        ["river", "net"], [("river-net", "river", "net")],
    )
    algebra = MoleculeAlgebra(geo_db)

    product = benchmark(algebra.product, states, rivers)

    assert len(product.molecule_type) == len(states) * len(rivers)
    _audit(product)
    sample = product.molecule_type.occurrence[0]
    # Each product molecule contains one state, one area, one river and one net.
    assert len(sample.atoms_of_type("state")) == 1
    assert len(sample.atoms_of_type("river")) == 1


def test_thm3_chained_operations(geo_db, mt_state_desc, benchmark):
    """Long operation chains stay closed (the operational content of Theorem 3)."""

    def chain():
        algebra = MoleculeAlgebra(geo_db)
        mt_state = algebra.define("mt_state", mt_state_desc)
        step = algebra.restrict(mt_state, attr("hectare", "state") > 400)
        step = algebra.project(step.molecule_type, ["state", "area", "edge"])
        step = algebra.restrict(step.molecule_type, attr("length", "edge") > 5)
        step = algebra.union(step.molecule_type, step.molecule_type)
        return algebra, step

    algebra, final = benchmark(chain)

    _audit(final)
    assert len(algebra.database.atom_types) > len(geo_db.atom_types)
