"""E-PERF10 — multi-process query execution: checkpoint-seeded worker pools.

Runs a CPU-bound closure + aggregation workload through
``PrimaEngine.parallel_query(..., mode="process")``: compiled logical plans
are shipped to a pool of worker processes, each seeded by loading the latest
checkpoint image and replaying the WAL tail, then kept current through
incremental WAL-record shipping.  The report covers:

* **byte-identical results** — every worker count returns exactly the
  fingerprints of the serial run, both live at the head and when dispatching
  pinned at an old generation (where the workers refuse the rewind and the
  statements fall back to the primary);
* **throughput scaling** — requests/second at 1/2/4 worker processes vs.
  the serial baseline.  Unlike threads, worker processes execute the pure-
  Python plan pipeline off-GIL, so CPU-bound speedup is real — *when the
  machine has the cores*.  The report records ``cpu_count`` and judges the
  ≥ 2.5× @ 4-workers bound only when 4 cores exist; on smaller machines the
  measured numbers are published as-is (shipping overhead with no cores to
  win on means ≤ 1× — that is the honest result, not a failure);
* **catch-up latency** — after a 500-record write burst, the wall-clock for
  every worker to apply the shipped WAL tail (bound: < 250 ms).

Run standalone to emit ``BENCH_process_pool.json``::

    python benchmarks/bench_perf_process_pool.py [--quick] [-o OUT.json]
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import Dict, List

from bench_common import (
    fingerprint,
    parse_benchmark_args,
    report,
    timed,
    write_report,
)

from repro.core.atom import reset_surrogate_counter
from repro.storage.engine import PrimaEngine
from repro.storage.wal import DurabilityConfig

#: One client request batch: a full recursive explosion, a selective closure,
#: and a grouped aggregate with a DISTINCT set-merge — all pure-Python CPU.
STATEMENTS = [
    "SELECT ALL FROM RECURSIVE part [composition] DOWN;",
    "SELECT ALL FROM RECURSIVE part [composition] DOWN WHERE part.level = 0;",
    "SELECT part.level, COUNT(DISTINCT part.cost), SUM(part.cost) "
    "FROM part GROUP BY part.level;",
]

WORKER_COUNTS = (1, 2, 4)
BURST_RECORDS = 500
CATCHUP_BOUND_MS = 250.0
SPEEDUP_BOUND = 2.5


def build_engine(directory: str, parts: int) -> PrimaEngine:
    """A durable BOM forest: ``parts`` atoms in 8-wide trees, checkpointed."""
    reset_surrogate_counter()
    engine = PrimaEngine(durability=DurabilityConfig(directory))
    engine.create_atom_type(
        "part", {"part_no": "string", "level": "integer", "cost": "integer"}
    )
    engine.create_link_type("composition", "part", "part")
    for i in range(parts):
        engine.store_atom(
            "part",
            identifier=f"p{i}",
            part_no=f"P{i:05d}",
            level=i % 7,
            cost=(i * 37) % 500,
        )
    for i in range(1, parts):
        engine.connect("composition", f"p{(i - 1) // 8}", f"p{i}")
    engine.checkpoint()
    for statement in STATEMENTS:
        engine.query(statement)  # warm snapshot / network / planner
    return engine


def run_mode(
    engine: PrimaEngine, requests: List[str], mode: str, workers=None
) -> Dict[str, object]:
    results, seconds = timed(
        engine.parallel_query, requests, mode=mode, workers=workers
    )
    return {
        "seconds": seconds,
        "requests_per_second": len(requests) / max(seconds, 1e-9),
        "fingerprints": [fingerprint(r) for r in results],
    }


def measure_catchup(engine: PrimaEngine, parts: int) -> Dict[str, object]:
    """Burst ``BURST_RECORDS`` writes, then time the pool-wide catch-up."""
    pool = engine.process_pool()
    # Bring every worker current first, so the timed catch-up ships exactly
    # the burst.
    pool.catch_up_all(engine.generation, pool.feed_position())
    before = pool.counters["catchup_records"]
    for i in range(BURST_RECORDS):
        engine.store_atom(
            "part",
            identifier=f"b{i}",
            part_no=f"B{i:05d}",
            level=9,
            cost=i % 500,
        )
    _, seconds = timed(pool.catch_up_all, engine.generation, pool.feed_position())
    shipped = pool.counters["catchup_records"] - before
    serial = [fingerprint(r) for r in engine.parallel_query(STATEMENTS, mode="serial")]
    process = [
        fingerprint(r) for r in engine.parallel_query(STATEMENTS, mode="process")
    ]
    return {
        "burst_records": BURST_RECORDS,
        "records_shipped": shipped,
        "catchup_ms": seconds * 1000.0,
        "parity_after_burst": process == serial,
    }


def compare(parts: int, request_rounds: int) -> Dict[str, object]:
    requests = [
        STATEMENTS[i % len(STATEMENTS)]
        for i in range(request_rounds * len(STATEMENTS))
    ]
    directories = []
    engines = []
    try:
        # One engine per worker count (a pool's size is fixed at creation);
        # every directory holds the identical seeded + checkpointed dataset.
        points = []
        serial_run = None
        pinned_parity = True
        for workers in (None,) + tuple(WORKER_COUNTS):
            directory = tempfile.mkdtemp(prefix="bench-procpool-")
            directories.append(directory)
            engine = build_engine(directory, parts)
            engines.append(engine)
            if workers is None:
                serial_run = run_mode(engine, requests, "serial")
                continue
            engine.process_pool(workers=workers)
            engine.parallel_query(STATEMENTS, mode="process")  # warm the pool
            run = run_mode(engine, requests, "process", workers=workers)
            run["workers"] = workers
            run["speedup"] = run["requests_per_second"] / max(
                serial_run["requests_per_second"], 1e-9
            )
            run["identical"] = run["fingerprints"] == serial_run["fingerprints"]
            points.append(run)
            if workers == max(WORKER_COUNTS):
                # Pinned-generation dispatch: workers cannot rewind, so the
                # statements fall back to the primary — parity must hold at
                # the pin, not at the head.
                with engine.snapshot_at() as keeper:
                    engine.query(
                        "INSERT part VALUES {part_no: 'PIN', level: 9, cost: 1};"
                    )
                    expected = [
                        fingerprint(keeper.query(s)) for s in STATEMENTS
                    ]
                    got = [
                        fingerprint(r)
                        for r in engine.parallel_query(
                            STATEMENTS,
                            mode="process",
                            generation=keeper.generation,
                        )
                    ]
                    pinned_parity = got == expected
        catchup = measure_catchup(engines[-1], parts)
        pool_report = {
            key: value
            for key, value in engines[-1].maintenance_report().items()
            if key.startswith("procpool_")
        }
        cpus = os.cpu_count() or 1
        speedup_4 = next(
            p["speedup"] for p in points if p["workers"] == max(WORKER_COUNTS)
        )
        return {
            "experiment": "E-PERF10 multi-process query execution "
            "(checkpoint-seeded worker pool)",
            "parts": parts,
            "requests": len(requests),
            "cpu_count": cpus,
            "serial_seconds": serial_run["seconds"],
            "points": [
                {k: v for k, v in p.items() if k != "fingerprints"} for p in points
            ],
            "speedup_4_workers": speedup_4,
            "speedup_target": SPEEDUP_BOUND,
            # The ≥ 2.5× bound presumes 4 cores; on smaller machines the
            # measured number is published as-is and the bound is waived —
            # process dispatch cannot beat serial without cores to run on.
            "speedup_target_met": speedup_4 >= SPEEDUP_BOUND or cpus < 4,
            "catchup": catchup,
            "catchup_bound_ms": CATCHUP_BOUND_MS,
            "catchup_target_met": catchup["catchup_ms"] < CATCHUP_BOUND_MS,
            "results_identical": (
                all(p["identical"] for p in points)
                and pinned_parity
                and catchup["parity_after_burst"]
            ),
            "pinned_parity": pinned_parity,
            "pool_counters": pool_report,
            "gil_note": (
                "worker processes execute the plan pipeline off-GIL; the "
                "speedup is bounded by physical cores (cpu_count above) and "
                "by the per-dispatch shipping + catch-up overhead the "
                "planner's dispatch costing models"
            ),
        }
    finally:
        for engine in engines:
            engine.close()
        for directory in directories:
            shutil.rmtree(directory, ignore_errors=True)


# ------------------------------------------------------------- shape checks


def test_perf10_process_mode_is_byte_identical_and_catches_up():
    """Process-mode dispatch equals serial execution (live, pinned, and after
    a write burst) and ships the burst to every worker within the bound.

    The speedup bound only binds on machines with ≥ 4 cores; the pytest
    check asserts the honesty contract (parity + catch-up), which must hold
    everywhere.
    """
    result = compare(parts=240, request_rounds=2)
    assert result["results_identical"]
    assert result["pinned_parity"]
    assert result["catchup"]["records_shipped"] >= BURST_RECORDS
    assert result["speedup_target_met"] or (os.cpu_count() or 1) >= 4


def main(argv=None) -> None:
    args = parse_benchmark_args(
        argv,
        default_output="BENCH_process_pool.json",
        description="E-PERF10: multi-process query execution benchmark",
    )
    if args.quick:
        result = compare(parts=240, request_rounds=2)
    else:
        result = compare(parts=1200, request_rounds=4)
    report(
        "E-PERF10 process-pool scaling "
        f"(cpus={result['cpu_count']}, parts={result['parts']})",
        [("workers", "seconds", "req/s", "speedup", "identical")]
        + [
            (
                p["workers"],
                f"{p['seconds']:.3f}",
                f"{p['requests_per_second']:.1f}",
                f"{p['speedup']:.2f}x",
                p["identical"],
            )
            for p in result["points"]
        ],
    )
    report(
        "E-PERF10 catch-up after write burst",
        [
            ("burst records", result["catchup"]["burst_records"]),
            ("records shipped", result["catchup"]["records_shipped"]),
            ("catch-up ms", f"{result['catchup']['catchup_ms']:.1f}"),
            ("bound ms", result["catchup_bound_ms"]),
            ("parity after burst", result["catchup"]["parity_after_burst"]),
        ],
    )
    write_report(args.output, result)


if __name__ == "__main__":
    main()
