"""E-PERF1 — the paper's efficiency claim: MAD vs. relational vs. NF² complex-object retrieval.

§1–2 argue that on the relational side "all n:m relationship types have to be
modeled by some auxiliary relations.  With this, the queries and their
processing obviously become more complicated and perhaps less efficient", and
§5 adds that NF² duplicates shared subobjects.  This benchmark makes all three
claims measurable on scaled synthetic geographies:

* wall-clock time of assembling all ``mt_state`` complex objects,
* intermediate tuples materialized (relational joins) vs. atoms touched
  (molecule derivation),
* storage overhead: junction-relation tuples (relational) and duplicated
  sub-tuples (NF²) vs. shared atoms (MAD).

Expected shape (checked by assertions): molecule derivation touches fewer
intermediate items than the relational join plan; the relational mapping
stores strictly more tuples than the MAD database has atoms; the NF² mapping
duplicates shared subobjects (duplication factor > 1).
"""

from __future__ import annotations

import pytest
from conftest import report

from repro import molecule_type_definition
from repro.core.derivation import hierarchical_join_statistics
from repro.core.molecule import MoleculeTypeDescription
from repro.datasets.geography import build_geography, mt_state_description
from repro.nf2 import molecule_type_to_nested, nested_duplication_factor
from repro.relational import assemble_complex_objects, map_database


def _description() -> MoleculeTypeDescription:
    atom_types, directed_links = mt_state_description()
    return MoleculeTypeDescription(atom_types, directed_links)


@pytest.mark.parametrize("n_states", [10, 30, 60])
def test_perf1_mad_molecule_derivation(benchmark, n_states):
    """MAD side: derive every mt_state molecule (the hierarchical join over links)."""
    db = build_geography(n_states=n_states, edges_per_state=5, n_rivers=4)
    description = _description()

    molecule_type = benchmark(molecule_type_definition, db, "mt_state", description)

    assert len(molecule_type) == n_states
    stats = hierarchical_join_statistics(db, description)
    report(
        f"E-PERF1 (MAD, {n_states} states)",
        [("molecules", stats["molecules"]), ("atoms touched", stats["atoms_touched"]),
         ("links touched", stats["links_touched"])],
    )


@pytest.mark.parametrize("n_states", [10, 30, 60])
def test_perf1_relational_join_assembly(benchmark, n_states):
    """Relational side: join root → auxiliary relations → leaves and re-nest."""
    db = build_geography(n_states=n_states, edges_per_state=5, n_rivers=4)
    description = _description()
    mapping = map_database(db)

    result = benchmark(assemble_complex_objects, mapping, description)

    assert len(result.objects) == n_states
    report(
        f"E-PERF1 (relational, {n_states} states)",
        [("objects", len(result.objects)),
         ("binary joins", result.plan.join_count()),
         ("intermediate tuples", result.intermediate_tuples())],
    )


@pytest.mark.parametrize("n_states", [10, 30])
def test_perf1_shape_mad_beats_relational(benchmark, n_states):
    """Shape check: molecule derivation touches fewer items than the join plan materializes."""
    db = build_geography(n_states=n_states, edges_per_state=5, n_rivers=4)
    description = _description()
    mapping = map_database(db)

    def both_sides():
        mad = hierarchical_join_statistics(db, description)
        relational = assemble_complex_objects(mapping, description)
        return mad, relational

    mad, relational = benchmark(both_sides)

    assert mad["molecules"] == len(relational.objects)
    assert mad["atoms_touched"] < relational.intermediate_tuples(), (
        "molecule derivation must touch fewer items than the relational join plan"
    )
    # Storage overhead: the relational image stores every link as a tuple.
    assert mapping.total_tuples() > db.atom_count()
    report(
        f"E-PERF1 shape ({n_states} states)",
        [
            ("metric", "MAD", "relational"),
            ("objects", mad["molecules"], len(relational.objects)),
            ("work items", mad["atoms_touched"], relational.intermediate_tuples()),
            ("stored tuples/atoms", db.atom_count(), mapping.total_tuples()),
        ],
    )


def test_perf1_nf2_duplicates_shared_subobjects(benchmark):
    """NF² side: nesting the hierarchical mt_state type copies every shared edge/point."""
    db = build_geography(n_states=20, edges_per_state=5, n_rivers=4)
    description = _description()
    molecule_type = molecule_type_definition(db, "mt_state", description)

    nested = benchmark(molecule_type_to_nested, molecule_type)

    assert len(nested) == len(molecule_type)
    factor = nested_duplication_factor(molecule_type, nested)
    assert factor > 1.0, "shared border edges must be duplicated in the NF² representation"
    report(
        "E-PERF1 (NF², 20 states)",
        [("nested tuples (flat)", nested.flat_tuple_count()),
         ("distinct MAD atoms", molecule_type.distinct_atom_count()),
         ("duplication factor", f"{factor:.2f}x")],
    )
