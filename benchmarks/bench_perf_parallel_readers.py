"""E-PERF7 — parallel snapshot readers: throughput scaling with thread count.

Runs the concurrent-readers workload of E-PERF5 — MQL reads over a
bill-of-materials engine at one pinned generation — on real worker threads
(:meth:`PrimaEngine.parallel_query` / one shared ``SnapshotHandle``) and
checks the thread-safe MVCC contract end to end:

* **byte-identical results** — every thread count returns exactly the
  fingerprints of the serial run at the same pinned generation, including
  while a writer thread commits a DML burst at the head;
* **throughput scaling** — requests/second grows with the thread count on
  the *request workload*: each request executes its pinned read and then
  waits out a fixed per-request stall (``io_stall_ms``) modelling the
  off-GIL time a multi-client deployment spends per request — client wire
  I/O, durable page reads, result compression.  The report requires ≥ 2×
  at 4 threads vs. 1 thread;
* **honesty about the GIL** — the pure-Python execute phase is time-sliced,
  not parallel, under CPython's GIL; the report therefore *also* measures
  and publishes ``cpu_bound_speedup`` (the same workload with a zero stall),
  which is expected to hover near 1×.  The MVCC layer itself is lock-free
  for readers — on a free-threaded build the cpu-bound number is the one
  that would move.

Run standalone to emit ``BENCH_parallel_readers.json``::

    python benchmarks/bench_perf_parallel_readers.py [--quick] [-o OUT.json]
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List

from bench_common import fingerprint, parse_benchmark_args, write_report

from repro.datasets.bill_of_materials import build_bill_of_materials
from repro.storage.engine import PrimaEngine

#: The read statements of one client request batch (recursive explosion plus
#: flat scans — the same molecule reads E-PERF5 pins).
STATEMENTS = [
    "SELECT ALL FROM part;",
    "SELECT ALL FROM RECURSIVE part [composition] DOWN;",
    "SELECT ALL FROM part WHERE part.level = 1;",
]

THREAD_COUNTS = (1, 2, 4)


def build_engine(depth: int, fan_out: int) -> PrimaEngine:
    database = build_bill_of_materials(depth=depth, fan_out=fan_out, share_every=3)
    engine = PrimaEngine.from_database(database)
    for statement in STATEMENTS:
        engine.query(statement)  # warm snapshot / network / planner
    return engine


def writer_round(engine: PrimaEngine, index: int) -> None:
    """One writer burst: create, re-price and retire a transient part."""
    code = f"W{index:05d}"
    engine.query(
        f"INSERT part VALUES {{part_no: '{code}', description: 'writer part', "
        f"level: 9, cost: {100 + index}}};"
    )
    engine.query(
        f"MODIFY part FROM part SET cost = {200 + index} WHERE part.part_no = '{code}';"
    )
    engine.query(f"DELETE FROM part WHERE part.part_no = '{code}';")


def run_requests(
    engine: PrimaEngine,
    requests: "List[str]",
    threads: int,
    generation: int,
    io_stall_s: float,
) -> Dict[str, object]:
    """Serve *requests* at one pinned generation on a pool of *threads*.

    One request = execute the statement on the shared snapshot handle,
    fingerprint the result (the response body), then wait out the
    per-request stall.  Returns the wall-clock and the ordered fingerprints.
    """
    with engine.snapshot_at(generation) as handle:

        def serve(statement: str) -> str:
            digest = fingerprint(handle.query(statement))
            if io_stall_s > 0:
                time.sleep(io_stall_s)
            return digest

        started = time.perf_counter()
        if threads <= 1:
            digests = [serve(statement) for statement in requests]
        else:
            with ThreadPoolExecutor(max_workers=threads) as pool:
                digests = list(pool.map(serve, requests))
        elapsed = time.perf_counter() - started
    return {
        "threads": threads,
        "seconds": elapsed,
        "requests_per_second": len(requests) / max(elapsed, 1e-9),
        "fingerprints": digests,
    }


def run_scaling(
    engine: PrimaEngine,
    requests: "List[str]",
    generation: int,
    io_stall_s: float,
    churn: bool,
) -> Dict[str, object]:
    """Measure every thread count (serial first — it is the reference).

    With *churn* a writer thread commits DML bursts at the head for the
    whole measurement, so the scaling numbers are taken under concurrent
    committed writes — the pinned fingerprints must not move.
    """
    stop = threading.Event()
    writer = None
    if churn:

        def churner() -> None:
            index = 0
            while not stop.is_set():
                writer_round(engine, index)
                index += 1

        writer = threading.Thread(target=churner)
        writer.start()
    try:
        runs = [
            run_requests(engine, requests, threads, generation, io_stall_s)
            for threads in THREAD_COUNTS
        ]
    finally:
        stop.set()
        if writer is not None:
            writer.join()
    reference = runs[0]["fingerprints"]
    identical = all(run["fingerprints"] == reference for run in runs)
    base_rps = runs[0]["requests_per_second"]
    points = [
        {
            "threads": run["threads"],
            "seconds": run["seconds"],
            "requests_per_second": run["requests_per_second"],
            "speedup": run["requests_per_second"] / max(base_rps, 1e-9),
        }
        for run in runs
    ]
    return {"points": points, "results_identical": identical}


def compare(
    requests_total: int, depth: int, fan_out: int, io_stall_ms: float
) -> Dict[str, object]:
    engine = build_engine(depth, fan_out)
    requests = [STATEMENTS[i % len(STATEMENTS)] for i in range(requests_total)]
    # Keep one pin alive across the whole comparison so every later pin of
    # the same generation still finds its history.
    keeper = engine.snapshot_at()
    generation = keeper.generation
    # Scaling is measured without writer churn: a tight writer loop adds
    # GIL-handoff latency to every request on every thread count, which
    # measures the scheduler, not the reader path.  Writer interaction is
    # E-PERF5's measurement; correctness under churn is verified below.
    request_scaling = run_scaling(
        engine, requests, generation, io_stall_ms / 1000.0, churn=False
    )
    cpu_scaling = run_scaling(engine, requests, generation, 0.0, churn=False)
    # The API-level parity check: parallel_query vs. its own serial mode,
    # with the pooled run racing a full-speed writer thread at the head.
    serial = [
        fingerprint(r)
        for r in engine.parallel_query(requests, threads=1, generation=generation)
    ]
    stop = threading.Event()

    def churner() -> None:
        index = 0
        while not stop.is_set():
            writer_round(engine, index)
            index += 1

    writer = threading.Thread(target=churner)
    writer.start()
    try:
        pooled = [
            fingerprint(r)
            for r in engine.parallel_query(requests, threads=4, generation=generation)
        ]
    finally:
        stop.set()
        writer.join()
    keeper.release()
    report = engine.maintenance_report()
    speedup_4 = next(
        p["speedup"] for p in request_scaling["points"] if p["threads"] == 4
    )
    return {
        "experiment": "E-PERF7 parallel snapshot readers (thread-safe MVCC)",
        "requests": requests_total,
        "depth": depth,
        "fan_out": fan_out,
        "parts": len(engine.scan("part")),
        "io_stall_ms": io_stall_ms,
        "request_workload": request_scaling,
        "cpu_bound_workload": cpu_scaling,
        "cpu_bound_speedup": next(
            p["speedup"] for p in cpu_scaling["points"] if p["threads"] == 4
        ),
        "speedup_4_threads": speedup_4,
        "results_identical": (
            request_scaling["results_identical"]
            and cpu_scaling["results_identical"]
            and serial == pooled
        ),
        "pins_released": report["pins_active"] == 0,
        "gil_note": (
            "CPython GIL: the pure-Python execute phase is time-sliced; the "
            "request workload's scaling comes from the per-request off-GIL "
            "stall (wire/disk/compression time), which is where a "
            "multi-client deployment actually waits"
        ),
    }


# ------------------------------------------------------------- shape checks


def test_perf7_parallel_readers_scale_on_the_request_workload():
    """4 reader threads serve the stall-bearing workload ≥ 2× faster than 1.

    The pytest workload uses a deliberately generous stall so the bound is
    robust to CI jitter; the standalone run is the authoritative number.
    """
    result = compare(requests_total=24, depth=3, fan_out=2, io_stall_ms=8.0)
    assert result["results_identical"]
    assert result["pins_released"]
    assert result["speedup_4_threads"] >= 2.0, (
        f"4-thread speedup {result['speedup_4_threads']:.2f}x under the "
        "request workload"
    )


def test_perf7_parallel_query_is_byte_identical_during_dml_burst():
    """parallel_query at a pinned generation equals serial execution while a
    writer thread commits at the head."""
    engine = build_engine(depth=3, fan_out=2)
    keeper = engine.snapshot_at()
    generation = keeper.generation
    requests = STATEMENTS * 3
    serial = [
        fingerprint(r)
        for r in engine.parallel_query(requests, threads=1, generation=generation)
    ]
    stop = threading.Event()

    def churn() -> None:
        index = 0
        while not stop.is_set():
            writer_round(engine, index)
            index += 1

    writer = threading.Thread(target=churn)
    writer.start()
    try:
        pooled = [
            fingerprint(r)
            for r in engine.parallel_query(requests, threads=4, generation=generation)
        ]
    finally:
        stop.set()
        writer.join()
    assert pooled == serial
    keeper.release()
    assert engine.maintenance_report()["pins_active"] == 0


def test_perf7_cpu_bound_scaling_is_reported_honestly():
    """The zero-stall workload still returns identical bytes; its speedup is
    published as-is (≈1× under the GIL — no fabricated parallelism)."""
    engine = build_engine(depth=3, fan_out=2)
    keeper = engine.snapshot_at()
    scaling = run_scaling(
        engine, STATEMENTS * 4, keeper.generation, 0.0, churn=False
    )
    keeper.release()
    assert scaling["results_identical"]
    speedups = [p["speedup"] for p in scaling["points"]]
    assert all(s > 0 for s in speedups)


# --------------------------------------------------------------- standalone


def main(argv: "List[str] | None" = None) -> int:
    args = parse_benchmark_args(
        argv, "BENCH_parallel_readers.json", __doc__.splitlines()[0]
    )
    requests_total, depth, fan_out, io_stall_ms = (
        (24, 3, 2, 8.0) if args.quick else (96, 4, 2, 8.0)
    )
    result = compare(
        requests_total=requests_total,
        depth=depth,
        fan_out=fan_out,
        io_stall_ms=io_stall_ms,
    )
    print(
        f"E-PERF7 parallel snapshot readers — {requests_total} requests over "
        f"{result['parts']} parts (depth={depth}, fan_out={fan_out}, "
        f"stall={io_stall_ms:.0f}ms)"
    )
    for point in result["request_workload"]["points"]:
        print(
            f"  {point['threads']} thread(s): {point['seconds']:.3f}s, "
            f"{point['requests_per_second']:.1f} req/s "
            f"({point['speedup']:.2f}x)"
        )
    print(
        f"  cpu-bound speedup at 4 threads (GIL): "
        f"{result['cpu_bound_speedup']:.2f}x"
    )
    print(
        f"  byte-identical across thread counts and writer churn: "
        f"{result['results_identical']}"
    )
    write_report(args.output, result)
    if not result["results_identical"] or not result["pins_released"]:
        return 1
    if result["speedup_4_threads"] < 2.0:
        print("  FAIL: 4-thread speedup below the 2x requirement")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
