"""E-FIG2 — Figure 2: two molecule types derived from the same atom networks.

Derives ``mt_state`` (state→area→edge→point) and ``point neighborhood``
(point→edge→(area→state, net→river)) from the same database and checks the
figure's two claims:

* the same link types are used symmetrically in both directions (dynamic
  object definition over a symmetric database);
* molecules overlap in shared subobjects (the Parana border edges and the
  corner point 'pn').
"""

from __future__ import annotations

from conftest import report

from repro import MoleculeAlgebra, attr, molecule_type_definition


def test_fig2_mt_state_molecules(geo_db, mt_state_desc, benchmark):
    """One mt_state molecule per state; neighbouring states share border subobjects."""
    mt_state = benchmark(molecule_type_definition, geo_db, "mt_state", mt_state_desc)

    assert len(mt_state) == len(geo_db.atyp("state"))
    shared = mt_state.shared_atoms()
    report(
        "Figure 2: mt_state molecule sizes",
        [("state", "atoms", "links")]
        + [
            (m.root_atom["code"], len(m), len(m.links))
            for m in sorted(mt_state, key=lambda m: str(m.root_atom["code"]))
        ],
    )
    # SP and MG share a border edge and its point (plus the 'pn' corner).
    sp = mt_state.find(code="SP")[0]
    mg = mt_state.find(code="MG")[0]
    assert sp.shares_atoms_with(mg), "SP and MG molecules must overlap (shared subobjects)"
    assert shared, "some atoms must belong to more than one mt_state molecule"


def test_fig2_point_neighborhood(geo_db, point_neighborhood_desc, benchmark):
    """The neighborhood of point 'pn' reaches the states SP, MS, MG, GO and the river Parana."""
    algebra = MoleculeAlgebra(geo_db)

    def derive_and_restrict():
        neighborhood = algebra.define("point_neighborhood", point_neighborhood_desc)
        return algebra.restrict(neighborhood, attr("name", "point") == "pn")

    result = benchmark(derive_and_restrict)

    assert len(result.molecule_type) == 1
    molecule = result.molecule_type.occurrence[0]
    states = sorted(atom["code"] for atom in molecule.atoms_of_type("state"))
    rivers = sorted(atom["name"] for atom in molecule.atoms_of_type("river"))
    report(
        "Figure 2: neighborhood of point 'pn'",
        [("states", ", ".join(states)), ("rivers", ", ".join(rivers))],
    )
    assert states == ["GO", "MG", "MS", "SP"]
    assert rivers == ["Parana"]


def test_fig2_symmetric_link_use(geo_db, mt_state_desc, point_neighborhood_desc, benchmark):
    """Both molecule types traverse the same nondirectional link types, in opposite directions."""

    def derive_both():
        return (
            molecule_type_definition(geo_db, "mt_state", mt_state_desc),
            molecule_type_definition(geo_db, "point_neighborhood", point_neighborhood_desc),
        )

    mt_state, neighborhood = benchmark(derive_both)

    downward = {dl.link_type_name for dl in mt_state_desc.directed_links}
    upward = {dl.link_type_name for dl in point_neighborhood_desc.directed_links}
    assert downward <= upward, "the neighborhood reuses every link type of mt_state"
    # The directions are opposite: state-area is used state→area in one and
    # area→state in the other.
    down_pairs = {(dl.source, dl.target) for dl in mt_state_desc.directed_links}
    up_pairs = {(dl.target, dl.source) for dl in point_neighborhood_desc.directed_links}
    assert down_pairs & up_pairs, "at least one link type is traversed in both directions"
    # Shared subobjects across molecule *types*: edges on the Parana appear in
    # state molecules and in the neighborhood molecules alike.
    state_atoms = {a.identifier for m in mt_state for a in m.atoms_of_type("edge")}
    neighborhood_atoms = {a.identifier for m in neighborhood for a in m.atoms_of_type("edge")}
    assert state_atoms & neighborhood_atoms
