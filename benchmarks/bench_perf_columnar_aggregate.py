"""E-PERF9 — columnar aggregation: projection arrays vs. the row operators.

Benchmarks the MQL aggregate pipeline (``COUNT``/``SUM``/``MIN``/``MAX``/
``AVG`` with ``GROUP BY``) on the lazily built columnar projection against the
row-fold operators running the *same MQL* over identical data — the baseline
engine simply has the columnar path switched off (``set_columnar(False)``),
so the planner keeps the Γ on the hash-aggregate over the molecule scan:

* **grouped fold across type sizes (the headline)** — a five-function
  grouped aggregate over wide occurrences at several type sizes.  The
  columnar fold partitions row indices per group and fills accumulators
  column-wise; the row path materializes one molecule per atom first.  The
  report requires **≥ 3×** on the largest size;
* **filtered and global folds (honest)** — a ``WHERE``-qualified grouped
  aggregate (evaluated column-wise) and a global no-GROUP-BY aggregate,
  published as measured;
* **MVCC scenarios** — parity is asserted live on the head, inside
  ``BEGIN``/``COMMIT WORK`` (private writes force the row fallback), at
  pinned snapshots both coherent (served columnar) and stale (fallback),
  and under an insert/modify/delete burst with interleaved aggregates;
  the projection's maintenance telemetry (builds, gap events, snapshot
  gaps, fallbacks) is published rather than pretending coherence is free;
* **byte-identical results** — every measured query is fingerprint-compared
  between the two engines, and EXPLAIN must show the costed columnar choice.

Run standalone to emit ``BENCH_columnar_aggregate.json``::

    python benchmarks/bench_perf_columnar_aggregate.py [--quick] [-o OUT.json]
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from bench_common import fingerprint, parse_benchmark_args, write_report

from repro.core.atom import reset_surrogate_counter
from repro.storage.engine import PrimaEngine

#: The headline five-function grouped aggregate.
GROUPED_QUERY = (
    "SELECT COUNT(*), SUM(reading.cost), MIN(reading.cost), "
    "MAX(reading.mass), AVG(reading.q1) FROM reading GROUP BY reading.bucket;"
)

#: The WHERE-qualified grouped aggregate (column-wise filter evaluation).
FILTERED_QUERY = (
    "SELECT COUNT(*), AVG(reading.q2) FROM reading "
    "WHERE reading.cost > 50.0 GROUP BY reading.bucket;"
)

#: The global (no GROUP BY) aggregate.
GLOBAL_QUERY = "SELECT COUNT(*), SUM(reading.mass), MAX(reading.q3) FROM reading;"

#: The headline requirement on the largest measured type size.
SPEEDUP_TARGET = 3.0

ALL_QUERIES = (GROUPED_QUERY, FILTERED_QUERY, GLOBAL_QUERY)


def build_engine(n_atoms: int) -> PrimaEngine:
    """One engine over a wide synthetic occurrence (deterministic values)."""
    reset_surrogate_counter()
    engine = PrimaEngine()
    engine.create_atom_type(
        "reading",
        {
            "tag": "string",
            "bucket": "integer",
            "cost": "real",
            "mass": "real",
            "q1": "real",
            "q2": "real",
            "q3": "real",
            "q4": "real",
        },
    )
    for i in range(n_atoms):
        engine.store_atom(
            "reading",
            identifier=f"r{i}",
            tag=f"T{i:05d}",
            bucket=i % 8,
            cost=float(i % 97),
            mass=float(i % 13) * 0.5,
            q1=float(i),
            q2=float(i) * 2.0,
            q3=float(i) * 3.0,
            q4=float(i) * 4.0,
        )
    return engine


def build_pair(n_atoms: int) -> Tuple[PrimaEngine, PrimaEngine]:
    """Two engines over identical data: columnar on, and the row baseline."""
    columnar = build_engine(n_atoms)
    baseline = build_engine(n_atoms)
    baseline.set_columnar(False)  # planner keeps Γ on the row operators
    return columnar, baseline


def run_repeats(engine: PrimaEngine, statement: str, runs: int) -> Tuple[str, float]:
    """Fingerprint of the (warmed) result and total seconds for *runs* runs."""
    digest = fingerprint(engine.query(statement))  # warm caches / build arrays
    started = time.perf_counter()
    for _ in range(runs):
        engine.query(statement)
    return digest, time.perf_counter() - started


def measure_queries(n_atoms: int, runs: int) -> Dict[str, object]:
    """Time the three aggregate shapes columnar vs. row at one type size."""
    columnar, baseline = build_pair(n_atoms)
    measurements = {}
    for label, statement in (
        ("grouped", GROUPED_QUERY),
        ("filtered", FILTERED_QUERY),
        ("global", GLOBAL_QUERY),
    ):
        col_digest, col_seconds = run_repeats(columnar, statement, runs)
        row_digest, row_seconds = run_repeats(baseline, statement, runs)
        measurements[label] = {
            "columnar_seconds": col_seconds,
            "row_seconds": row_seconds,
            "speedup": row_seconds / max(col_seconds, 1e-9),
            "identical": col_digest == row_digest,
        }
    report = columnar.maintenance_report()
    return {
        "atoms": n_atoms,
        "runs": runs,
        "queries": measurements,
        "identical": all(m["identical"] for m in measurements.values()),
        "grouped_speedup": measurements["grouped"]["speedup"],
        "columnar_builds": report["columnar_builds"],
        "columnar_fallbacks": report["columnar_fallbacks"],
    }


def dml_round(engine: PrimaEngine, index: int, n_atoms: int) -> None:
    """One churn round: insert a reading, modify a survivor, delete a third."""
    extra = f"x{index:05d}"
    engine.store_atom(
        "reading",
        identifier=extra,
        tag=extra.upper(),
        bucket=index % 8,
        cost=float(index % 97),
        mass=1.0,
        q1=float(index),
        q2=2.0,
        q3=3.0,
        q4=4.0,
    )
    engine.store_atom(
        "reading",
        identifier=f"r{index % n_atoms}",
        tag=f"M{index:05d}",
        bucket=(index + 3) % 8,
        cost=float((index * 7) % 97),
        mass=2.0,
        q1=float(index) * 0.5,
        q2=1.0,
        q3=1.0,
        q4=1.0,
    )
    if index % 3 == 0:
        engine.delete_atom("reading", extra)


def measure_scenarios(n_atoms: int, rounds: int) -> Dict[str, object]:
    """MVCC parity: transactions, pinned snapshots, and a DML burst.

    Every comparison runs the same MQL on both engines; a single failed
    fingerprint fails the whole report.
    """
    columnar, baseline = build_pair(n_atoms)
    parity: Dict[str, bool] = {}

    def check(label: str, statement: str, left=None, right=None) -> None:
        left = left if left is not None else columnar
        right = right if right is not None else baseline
        parity[label] = fingerprint(left.query(statement)) == fingerprint(
            right.query(statement)
        )

    check("head", GROUPED_QUERY)

    # Inside BEGIN/COMMIT WORK: private writes force the row fallback.
    insert = (
        "INSERT reading VALUES {tag: 'TX', bucket: 1, cost: 3.0, mass: 1.0, "
        "q1: 1.0, q2: 2.0, q3: 3.0, q4: 4.0};"
    )
    for engine in (columnar, baseline):
        engine.query("BEGIN WORK;")
        engine.query(insert)
    check("in_transaction", GROUPED_QUERY)
    for engine in (columnar, baseline):
        engine.query("COMMIT WORK;")
    check("after_commit", GROUPED_QUERY)

    # Pinned snapshots: coherent pins are served columnar; once the head
    # moves on, the stale pin falls back to the row path over its own view.
    col_pin, row_pin = columnar.snapshot_at(), baseline.snapshot_at()
    check("pinned_snapshot", GROUPED_QUERY, col_pin, row_pin)
    burst_started = time.perf_counter()
    for index in range(rounds):
        dml_round(columnar, index, n_atoms)
        dml_round(baseline, index, n_atoms)
        if index % max(1, rounds // 4) == 0:
            check(f"under_burst_{index}", GROUPED_QUERY)
    burst_seconds = time.perf_counter() - burst_started
    check("stale_pin_after_burst", GROUPED_QUERY, col_pin, row_pin)
    check("after_burst", GROUPED_QUERY)
    check("after_burst_filtered", FILTERED_QUERY)

    report = columnar.maintenance_report()
    return {
        "atoms": n_atoms,
        "rounds": rounds,
        "burst_seconds": burst_seconds,
        "parity": parity,
        "all_identical": all(parity.values()),
        "columnar_builds": report["columnar_builds"],
        "columnar_gap_events": report["columnar_gap_events"],
        "columnar_snapshot_gaps": report["columnar_snapshot_gaps"],
        "columnar_fallbacks": report["columnar_fallbacks"],
        "generation_current": report["columnar_generation"] == report["generation"],
    }


def capture_explain(n_atoms: int) -> List[str]:
    """EXPLAIN of the headline query on the columnar engine."""
    engine = build_engine(n_atoms)
    engine.query(GROUPED_QUERY)  # build the projection first
    return engine.query("EXPLAIN " + GROUPED_QUERY).explanation.splitlines()


def compare(sizes: List[int], runs: int, rounds: int) -> Dict[str, object]:
    by_size = [measure_queries(n, runs) for n in sizes]
    scenarios = measure_scenarios(sizes[len(sizes) // 2], rounds)
    explain = capture_explain(sizes[0])
    headline = by_size[-1]["grouped_speedup"]
    return {
        "experiment": "E-PERF9 columnar aggregation (projection arrays vs. row fold)",
        "sizes": by_size,
        "scenarios": scenarios,
        "explain": explain,
        "speedup_target": SPEEDUP_TARGET,
        "headline_speedup": headline,
        "speedup_target_met": headline >= SPEEDUP_TARGET,
        "results_identical": (
            all(size["identical"] for size in by_size)
            and scenarios["all_identical"]
        ),
        "honesty_note": (
            "the >=3x claim is the grouped fold on the largest type size; "
            "filtered and global folds, the transactional/stale-pin fallbacks "
            "(row-path, slower by design) and the DML-burst maintenance "
            "telemetry are published unfiltered above"
        ),
    }


# ------------------------------------------------------------- shape checks


def test_perf9_grouped_fold_is_byte_identical_and_faster():
    """The columnar fold returns the row path's bytes and beats its clock.

    The pytest workload is deliberately small, so the bound here is only
    > 1×; the standalone run (larger types, more runs) is the authoritative
    ≥ 3× measurement.
    """
    result = measure_queries(n_atoms=800, runs=2)
    assert result["identical"]
    assert result["columnar_builds"] >= 1
    assert result["grouped_speedup"] > 1.0, (
        f"grouped speedup {result['grouped_speedup']:.2f}x on the pytest workload"
    )


def test_perf9_mvcc_scenarios_keep_parity_and_report_fallbacks():
    result = measure_scenarios(n_atoms=400, rounds=8)
    assert result["all_identical"], result["parity"]
    # The transactional read and the stale pin both took the row fallback.
    assert result["columnar_fallbacks"] >= 2
    assert result["columnar_snapshot_gaps"] >= 1
    assert result["generation_current"]


def test_perf9_explain_reports_the_columnar_choice():
    explanation = "\n".join(capture_explain(n_atoms=200))
    assert "columnarize_aggregate" in explanation
    assert "columnar projection reading" in explanation


# --------------------------------------------------------------- standalone


def main(argv: "List[str] | None" = None) -> int:
    args = parse_benchmark_args(
        argv, "BENCH_columnar_aggregate.json", __doc__.splitlines()[0]
    )
    if args.quick:
        sizes, runs, rounds = [500, 2000, 8000], 3, 24
    else:
        sizes, runs, rounds = [1000, 10000, 40000], 5, 96
    result = compare(sizes=sizes, runs=runs, rounds=rounds)
    print(
        f"E-PERF9 columnar aggregation — sizes {sizes}, {runs} runs/query, "
        f"{rounds} burst rounds"
    )
    for size in result["sizes"]:
        grouped = size["queries"]["grouped"]
        print(
            f"  {size['atoms']:>6} atoms: grouped row {grouped['row_seconds']:.3f}s, "
            f"columnar {grouped['columnar_seconds']:.3f}s -> "
            f"{grouped['speedup']:.1f}x, filtered {size['queries']['filtered']['speedup']:.1f}x, "
            f"global {size['queries']['global']['speedup']:.1f}x, "
            f"identical={size['identical']}"
        )
    scenarios = result["scenarios"]
    print(
        f"  MVCC scenarios ({scenarios['rounds']} burst rounds in "
        f"{scenarios['burst_seconds']:.3f}s): parity={scenarios['all_identical']}, "
        f"builds={scenarios['columnar_builds']}, gaps={scenarios['columnar_gap_events']}, "
        f"snapshot_gaps={scenarios['columnar_snapshot_gaps']}, "
        f"fallbacks={scenarios['columnar_fallbacks']}"
    )
    print(
        f"  headline: {result['headline_speedup']:.1f}x on the largest size "
        f"(target >= {SPEEDUP_TARGET:.0f}x)"
    )
    write_report(args.output, result)
    if not result["results_identical"]:
        return 1
    if not result["speedup_target_met"]:
        print(
            f"  FAIL: grouped speedup {result['headline_speedup']:.1f}x below "
            f"the {SPEEDUP_TARGET:.0f}x requirement"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
