"""Multi-process query execution: checkpoint-seeded workers, plan shipping.

``PrimaEngine.parallel_query(..., mode="process")`` ships compiled logical
plans to a pool of worker processes, each seeded by loading the latest
checkpoint image and replaying the WAL tail, then kept current through
incremental record shipping.  The contract is the same as thread mode:
statement-ordered results whose rendered content is byte-identical to serial
execution at the same pinned generation.

Covers: fingerprint parity for statement fan-out and for the two partitioned
shapes (per-root recursive closures, per-partition columnar Γ folds with a
``COUNT(DISTINCT …)`` set-merge), transparent restart after ``kill -9`` of a
worker mid-sequence, incremental catch-up after write bursts and after
checkpoint truncation, generation refusal → primary fallback, shipping-codec
round-trip determinism, and a hypothesis sweep of interleaved DML.
"""

from __future__ import annotations

import json
import os
import signal
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.atom import reset_surrogate_counter
from repro.exceptions import StorageError
from repro.storage.engine import PrimaEngine
from repro.storage.shipping import (
    ShippedQueryResult,
    ShippingError,
    encode_plan,
    plan_from_json,
    plan_to_json,
)
from repro.storage.wal import DurabilityConfig


def fingerprint(result):
    """Order-independent canonical rendering of a query result."""
    return sorted(json.dumps(d, sort_keys=True, default=str) for d in result.to_dicts())


TREE_EDGES = [
    ("p0", "p1"),
    ("p0", "p2"),
    ("p1", "p3"),
    ("p1", "p4"),
    ("p2", "p5"),
    ("p3", "p6"),
    ("p6", "p7"),
    ("p7", "p8"),
    ("p9", "p10"),
]

STATEMENTS = [
    "SELECT item FROM item WHERE item.qty = 2;",
    "SELECT item.grp, COUNT(DISTINCT item.qty), SUM(item.val) FROM item GROUP BY item.grp;",
    "SELECT COUNT(item.name) FROM item;",
    "SELECT ALL FROM RECURSIVE part [composition] DOWN;",
]

RECURSIVE_ALL = "SELECT ALL FROM RECURSIVE part [composition] DOWN;"
GROUPED_DISTINCT = (
    "SELECT item.grp, COUNT(DISTINCT item.qty), SUM(item.val) "
    "FROM item GROUP BY item.grp;"
)


def build_engine(directory, parts=12, items=60, checkpoint=True) -> PrimaEngine:
    reset_surrogate_counter()
    engine = PrimaEngine(durability=DurabilityConfig(directory))
    engine.create_atom_type(
        "item", {"name": "string", "grp": "string", "val": "real", "qty": "integer"}
    )
    engine.create_atom_type("part", {"part_no": "string", "cost": "integer"})
    engine.create_link_type("composition", "part", "part")
    for i in range(items):
        engine.store_atom(
            "item",
            identifier=f"i{i}",
            name=f"n{i}",
            grp="even" if i % 2 == 0 else "odd",
            val=float(i),
            qty=i % 5,
        )
    for i in range(parts):
        engine.store_atom("part", identifier=f"p{i}", part_no=f"P{i:03d}", cost=i * 10)
    for parent, child in TREE_EDGES:
        engine.connect("composition", parent, child)
    if checkpoint:
        engine.checkpoint()
    return engine


@pytest.fixture(scope="module")
def shared_engine(tmp_path_factory):
    """One engine + 2-worker pool reused by the read-only parity tests."""
    engine = build_engine(tmp_path_factory.mktemp("procpool-shared"))
    engine.process_pool(workers=2)
    yield engine
    engine.close()


@pytest.fixture
def fresh_engine(tmp_path):
    engine = build_engine(tmp_path)
    yield engine
    engine.close()


class TestProcessModeParity:
    def test_statement_fanout_matches_serial(self, shared_engine):
        serial = shared_engine.parallel_query(STATEMENTS, mode="serial")
        proc = shared_engine.parallel_query(STATEMENTS, mode="process")
        assert len(proc) == len(serial)
        for expected, got in zip(serial, proc):
            assert fingerprint(got) == fingerprint(expected)

    def test_partitioned_recursive_closure(self, shared_engine):
        serial = shared_engine.query(RECURSIVE_ALL)
        (proc,) = shared_engine.parallel_query([RECURSIVE_ALL], mode="process")
        assert isinstance(proc, ShippedQueryResult)
        assert proc.dispatch == "process-partitioned"
        assert fingerprint(proc) == fingerprint(serial)

    def test_partitioned_distinct_merge(self, shared_engine):
        """COUNT(DISTINCT …) merges value *sets* across partitioned Γ folds —
        a count-merge would overcount values present in several partitions."""
        serial = shared_engine.query(GROUPED_DISTINCT)
        (proc,) = shared_engine.parallel_query([GROUPED_DISTINCT], mode="process")
        assert proc.dispatch == "process-partitioned"
        assert fingerprint(proc) == fingerprint(serial)
        assert shared_engine.process_pool().counters["partitioned"] >= 1

    def test_results_keep_statement_order(self, shared_engine):
        statements = list(reversed(STATEMENTS))
        serial = shared_engine.parallel_query(statements, mode="serial")
        proc = shared_engine.parallel_query(statements, mode="process")
        for expected, got in zip(serial, proc):
            assert fingerprint(got) == fingerprint(expected)

    def test_explain_falls_back_to_primary(self, shared_engine):
        (result,) = shared_engine.parallel_query(
            ["EXPLAIN SELECT item FROM item WHERE item.qty = 2;"], mode="process"
        )
        assert not isinstance(result, ShippedQueryResult)
        assert shared_engine.process_pool().counters["fallbacks"] >= 1

    def test_dml_still_rejected(self, shared_engine):
        with pytest.raises(StorageError):
            shared_engine.parallel_query(
                ["DELETE FROM item WHERE item.qty = 2;"], mode="process"
            )

    def test_unknown_mode_rejected(self, shared_engine):
        with pytest.raises(StorageError):
            shared_engine.parallel_query(["SELECT item FROM item;"], mode="fiber")

    def test_maintenance_report_counters(self, shared_engine):
        shared_engine.parallel_query(STATEMENTS[:2], mode="process")
        report = shared_engine.maintenance_report()
        assert report["procpool_workers"] == 2
        assert report["procpool_dispatches"] >= 1
        assert report["procpool_plans_shipped"] >= 1
        assert report["procpool_workers_started"] >= 2


class TestWorkerLifecycle:
    def test_crash_mid_sequence_restarts_transparently(self, fresh_engine):
        pool = fresh_engine.process_pool(workers=2)
        baseline = fresh_engine.parallel_query(STATEMENTS, mode="serial")
        victim = pool.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            try:
                os.kill(victim, 0)
            except OSError:
                break
            time.sleep(0.02)
        proc = fresh_engine.parallel_query(STATEMENTS, mode="process")
        for expected, got in zip(baseline, proc):
            assert fingerprint(got) == fingerprint(expected)
        assert pool.counters["restarts"] >= 1
        assert victim not in pool.worker_pids()

    def test_catchup_after_write_burst(self, fresh_engine):
        pool = fresh_engine.process_pool(workers=2)
        fresh_engine.parallel_query(STATEMENTS[:1], mode="process")  # workers current
        for i in range(100, 150):
            fresh_engine.store_atom(
                "item",
                identifier=f"i{i}",
                name=f"n{i}",
                grp="burst",
                val=float(i),
                qty=i % 5,
            )
        serial = fresh_engine.parallel_query(STATEMENTS, mode="serial")
        proc = fresh_engine.parallel_query(STATEMENTS, mode="process")
        for expected, got in zip(serial, proc):
            assert fingerprint(got) == fingerprint(expected)
        assert pool.counters["catchup_records"] >= 50

    def test_catchup_across_checkpoint_truncation(self, fresh_engine):
        """A checkpoint truncates the WAL file; workers must keep tracking
        through the in-memory feed (which only ever grows) regardless."""
        pool = fresh_engine.process_pool(workers=2)
        fresh_engine.parallel_query(STATEMENTS[:1], mode="process")
        for i in range(200, 220):
            fresh_engine.store_atom(
                "item", identifier=f"i{i}", name=f"n{i}", grp="pre", val=1.0, qty=1
            )
        fresh_engine.checkpoint()
        for i in range(220, 240):
            fresh_engine.store_atom(
                "item", identifier=f"i{i}", name=f"n{i}", grp="post", val=2.0, qty=2
            )
        serial = fresh_engine.parallel_query(STATEMENTS, mode="serial")
        proc = fresh_engine.parallel_query(STATEMENTS, mode="process")
        for expected, got in zip(serial, proc):
            assert fingerprint(got) == fingerprint(expected)
        assert pool.counters["restarts"] == 0

    def test_refusal_on_rewound_generation_falls_back(self, fresh_engine):
        pool = fresh_engine.process_pool(workers=2)
        with fresh_engine.snapshot_at() as old:
            for i in range(300, 310):
                fresh_engine.store_atom(
                    "item", identifier=f"i{i}", name=f"n{i}", grp="new", val=3.0, qty=3
                )
            # Advance the workers past the old generation…
            fresh_engine.parallel_query(STATEMENTS[:1], mode="process")
            refusals_before = pool.counters["refusals"]
            # …then dispatch pinned at it: workers cannot rewind, so every
            # statement falls back to the primary at the old pin.
            results = fresh_engine.parallel_query(
                ["SELECT COUNT(item.name) FROM item;"],
                mode="process",
                generation=old.generation,
            )
            expected = old.query("SELECT COUNT(item.name) FROM item;")
            assert fingerprint(results[0]) == fingerprint(expected)
            assert pool.counters["refusals"] > refusals_before
            assert pool.counters["fallbacks"] >= 1

    def test_pool_requires_durability(self):
        engine = PrimaEngine()
        with pytest.raises(StorageError):
            engine.process_pool()

    def test_close_shuts_down_pool(self, tmp_path):
        engine = build_engine(tmp_path)
        pool = engine.process_pool(workers=2)
        pids = pool.worker_pids()
        engine.close()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            alive = []
            for pid in pids:
                try:
                    os.kill(pid, 0)
                    alive.append(pid)
                except OSError:
                    pass
            if not alive:
                break
            time.sleep(0.02)
        assert not alive


class TestShippingCodec:
    def plans(self, engine):
        interpreter = engine.interpreter()
        return [interpreter.plan(statement).best for statement in STATEMENTS]

    def test_roundtrip_is_byte_identical(self, shared_engine):
        for plan in self.plans(shared_engine):
            wire = plan_to_json(plan)
            again = plan_to_json(plan_from_json(wire))
            assert wire == again

    def test_encoding_is_deterministic_across_translations(self, shared_engine):
        """Two translations of the same statement encode identically except
        for the translator's fresh ``mql_resultN`` gensym (which names the
        result molecule type but never shapes its content)."""
        import re

        interpreter = shared_engine.interpreter()
        anonymize = lambda wire: re.sub(r"mql_result\d+", "mql_result#", wire)
        for statement in STATEMENTS:
            first = plan_to_json(interpreter.plan(statement).best)
            second = plan_to_json(interpreter.plan(statement).best)
            assert anonymize(first) == anonymize(second)

    def test_opaque_predicates_are_rejected(self, shared_engine):
        from repro.core.predicates import PredicateFormula
        from repro.engine.logical import RestrictPlan

        plan = self.plans(shared_engine)[0]
        opaque = RestrictPlan(
            child=plan, formula=PredicateFormula(lambda atom: True, "opaque")
        )
        with pytest.raises(ShippingError):
            encode_plan(opaque)

    def test_explain_output_is_deterministic(self, shared_engine):
        """Determinism audit: `PlanChoice.explain()` must render identically
        for repeated plannings of the same statement — modulo the translator's
        ``mql_resultN`` gensym — with no dict-order leaks."""
        import re

        interpreter = shared_engine.interpreter()
        anonymize = lambda text: re.sub(r"mql_result\d+", "mql_result#", text)
        for statement in STATEMENTS:
            assert anonymize(interpreter.plan(statement).explain()) == anonymize(
                interpreter.plan(statement).explain()
            )

    def test_to_dicts_is_deterministic(self, shared_engine):
        for statement in STATEMENTS:
            first = shared_engine.query(statement).to_dicts()
            second = shared_engine.query(statement).to_dicts()
            assert json.dumps(first, sort_keys=True, default=str) == json.dumps(
                second, sort_keys=True, default=str
            )


@st.composite
def dml_batches(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(st.sampled_from(["insert", "modify", "delete"]))
        index = draw(st.integers(min_value=0, max_value=59))
        if kind == "insert":
            ops.append(
                (
                    "insert",
                    draw(st.integers(min_value=1000, max_value=1999)),
                    draw(st.integers(min_value=0, max_value=4)),
                )
            )
        elif kind == "modify":
            # MQL real literals are fixed-point (no exponent notation).
            value = round(draw(st.floats(0, 100, allow_nan=False)), 2)
            ops.append(("modify", index, value))
        else:
            ops.append(("delete", index))
    return ops


class TestInterleavedDMLSweep:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(batch=dml_batches())
    def test_parity_after_interleaved_dml(self, shared_engine, batch):
        """Process-mode results stay byte-identical to serial execution no
        matter what committed DML lands between dispatches (state accumulates
        across examples — every dispatch re-ships the new WAL tail)."""
        for op in batch:
            if op[0] == "insert":
                _, index, qty = op
                shared_engine.query(
                    "INSERT item VALUES {{name: 'h{0}', grp: 'hyp', "
                    "val: {0}.0, qty: {1}}};".format(index, qty)
                )
            elif op[0] == "modify":
                _, index, val = op
                shared_engine.query(
                    f"MODIFY item FROM item SET val = {val:.2f} "
                    f"WHERE item.name = 'n{index}';"
                )
            else:
                _, index = op
                shared_engine.query(
                    f"DELETE FROM item WHERE item.name = 'n{index}';"
                )
        serial = shared_engine.parallel_query(STATEMENTS[:3], mode="serial")
        proc = shared_engine.parallel_query(STATEMENTS[:3], mode="process")
        for expected, got in zip(serial, proc):
            assert fingerprint(got) == fingerprint(expected)
