"""Unit tests for the ER front-end, the schema layer, and the storage substrate."""

import pytest

from repro.core.link import Cardinality
from repro.er import ERSchema, EntityType, RelationshipType, er_to_mad, er_to_relational_schemas
from repro.er.model import geographic_er_schema
from repro.er.to_mad import er_to_mad_report
from repro.er.to_relational import auxiliary_relation_count
from repro.exceptions import (
    CardinalityError,
    DuplicateNameError,
    SchemaError,
    StorageError,
    UnknownNameError,
)
from repro.schema import Catalog, SchemaBuilder, validate_database
from repro.storage import AtomNetwork, AtomStore, HashIndex, LinkStore, PrimaEngine


class TestERModel:
    def test_entity_definition(self):
        entity = EntityType.define("state", name="string", hectare="integer")
        assert entity.attribute_names == ("name", "hectare")

    def test_relationship_cardinality_validation(self):
        with pytest.raises(SchemaError):
            RelationshipType("r", "a", "b", "3:4")

    def test_schema_construction(self):
        schema = ERSchema("s")
        schema.add_entity("a", x="integer")
        schema.add_entity("b", y="integer")
        schema.add_relationship("r", "a", "b", "n:m")
        assert schema.entity("a").name == "a"
        assert schema.relationship("r").is_many_to_many
        with pytest.raises(DuplicateNameError):
            schema.add_entity("a")
        with pytest.raises(UnknownNameError):
            schema.add_relationship("r2", "a", "missing")
        with pytest.raises(UnknownNameError):
            schema.entity("missing")

    def test_geographic_schema_matches_fig1(self):
        schema = geographic_er_schema()
        assert len(schema.entity_types) == 7
        assert len(schema.relationship_types) == 6
        assert len(schema.many_to_many_relationships()) == 3

    def test_er_to_mad_one_to_one(self):
        schema = geographic_er_schema()
        mad = er_to_mad(schema)
        assert set(mad.atom_type_names) == {e.name for e in schema.entity_types}
        assert set(mad.link_type_names) == {r.name for r in schema.relationship_types}
        report = er_to_mad_report(schema, mad)
        assert all("MISSING" not in kind for kind, _ in report.values())

    def test_er_to_mad_cardinalities(self):
        schema = geographic_er_schema()
        mad = er_to_mad(schema, enforce_cardinalities=True)
        assert mad.ltyp("state-area").cardinality is Cardinality.ONE_TO_MANY
        assert mad.ltyp("area-edge").cardinality is Cardinality.MANY_TO_MANY

    def test_er_to_relational_junctions(self):
        schema = geographic_er_schema()
        relational = er_to_relational_schemas(schema)
        assert auxiliary_relation_count(schema) == 3
        assert "area-edge" in relational
        # 1:n relationships fold into a foreign key on the dependent side.
        assert any(a.startswith("state-area") for a in relational["area"].attributes)

    def test_reflexive_relationship_to_relational(self):
        schema = ERSchema("bom")
        schema.add_entity("part", part_no="string")
        schema.add_relationship("composition", "part", "part", "n:m")
        relational = er_to_relational_schemas(schema)
        assert relational["composition"].attributes == ("part_super_id", "part_sub_id")


class TestSchemaLayer:
    def test_builder_builds_database(self):
        db = (
            SchemaBuilder("geo")
            .atom_type("state", name="string", hectare="integer")
            .atom_type("area", area_id="string")
            .link_type("state-area", "state", "area", cardinality="1:n")
            .build()
        )
        assert db.has_atom_type("state")
        assert db.ltyp("state-area").cardinality is Cardinality.ONE_TO_MANY

    def test_builder_reflexive_and_docs(self):
        builder = SchemaBuilder("bom").atom_type("part", part_no="string", _doc="a part")
        builder.reflexive_link_type("composition", "part", _doc="assembly structure")
        db = builder.build()
        assert db.ltyp("composition").is_reflexive
        assert builder.documentation["part"] == "a part"

    def test_builder_unknown_cardinality(self):
        with pytest.raises(SchemaError):
            SchemaBuilder("x").atom_type("a", x="integer").link_type("l", "a", "a", "many")

    def test_catalog_entries(self, geo_db):
        catalog = Catalog(geo_db)
        assert len(catalog) == 13
        assert catalog.entry("state").kind == "atom_type"
        assert catalog.entry("state-area").connects == ("state", "area")
        assert "hectare" in catalog.entry("state").attributes
        assert catalog.attribute_owner("hectare") == ("state",)
        assert catalog.link_types_between("area", "edge")[0].name == "area-edge"
        with pytest.raises(UnknownNameError):
            catalog.entry("missing")
        assert len(catalog.to_rows()) == 13

    def test_catalog_refresh(self, geo_db):
        catalog = Catalog(geo_db)
        geo_db.define_atom_type("extra", {"x": "integer"})
        assert "extra" not in catalog
        catalog.refresh()
        assert "extra" in catalog

    def test_validation_detects_cardinality_violation(self):
        db = (
            SchemaBuilder("x")
            .atom_type("a", k="string")
            .atom_type("b", k="string")
            .link_type("l", "a", "b")
            .build()
        )
        db.insert_atom("a", identifier="a1", k="x")
        db.insert_atom("b", identifier="b1", k="x")
        db.insert_atom("b", identifier="b2", k="y")
        db.connect("l", "a1", "b1")
        db.connect("l", "a1", "b2")
        # Tighten the cardinality after the fact and re-validate.
        db.ltyp("l").cardinality = Cardinality.ONE_TO_ONE
        report = validate_database(db)
        assert not report.is_valid
        assert any("cardinality" in violation for violation in report.violations)

    def test_validation_ok_for_geo(self, geo_db):
        report = validate_database(geo_db)
        assert report.is_valid
        assert report.checked_atoms == geo_db.atom_count()
        assert report.checked_links == geo_db.link_count()


class TestStorage:
    def test_hash_index(self):
        from repro.core.atom import Atom

        index = HashIndex("state", "code")
        index.insert(Atom("state", {"code": "SP"}, identifier="SP"))
        index.insert(Atom("state", {"code": "MG"}, identifier="MG"))
        assert index.lookup("SP") == frozenset({"SP"})
        assert index.distinct_values() == 2
        index.insert(Atom("state", {"code": "RJ"}, identifier="SP"))  # re-index same atom
        assert index.lookup("SP") == frozenset()
        assert index.lookup("RJ") == frozenset({"SP"})
        index.remove("SP")
        assert len(index) == 1

    def test_atom_store_crud_and_indexes(self):
        store = AtomStore("state", {"code": "string", "hectare": "integer"})
        store.store({"code": "SP", "hectare": 750}, identifier="SP")
        store.store({"code": "MG", "hectare": 900}, identifier="MG")
        assert store.get("SP")["hectare"] == 750
        store.create_index("code")
        assert store.has_index("code")
        assert len(store.lookup("code", "MG")) == 1
        assert len(store.lookup("hectare", 750)) == 1  # unindexed scan path
        store.delete("SP")
        assert store.get("SP") is None
        with pytest.raises(StorageError):
            store.delete("SP")
        with pytest.raises(StorageError):
            store.create_index("missing")

    def test_link_store_adjacency(self):
        store = LinkStore("wrote", "author", "book")
        store.store("a1", "b1")
        store.store("a1", "b2")
        assert store.neighbours("a1") == frozenset({"b1", "b2"})
        assert store.degree("a1") == 2
        assert len(store.links_of("b1")) == 1
        assert store.delete_atom("a1") == 2
        assert len(store) == 0

    def test_engine_two_layers(self, geo_db):
        engine = PrimaEngine.from_database(geo_db)
        # Atom-oriented interface.
        assert engine.get_atom("state", "SP")["name"] == "Sao Paulo"
        assert len(engine.lookup("state", "code", "MG")) == 1
        assert "a7" in engine.neighbours("state-area", "SP") or engine.neighbours("state-area", "SP")
        # Molecule-processing interface.
        result = engine.query("SELECT ALL FROM state-area WHERE state.hectare > 800;")
        assert len(result) == 4
        molecule_type = engine.define_molecule_type(
            "mt", ["state", "area"], [("state-area", "state", "area")]
        )
        assert len(molecule_type) == 10

    def test_engine_snapshot_maintained_incrementally(self):
        engine = PrimaEngine("e")
        engine.create_atom_type("a", {"x": "integer"})
        first = engine.to_database()
        assert engine.to_database() is first  # cached
        engine.store_atom("a", x=1)
        # Incremental maintenance keeps the same snapshot object, updated in
        # place — no re-export on writes.
        assert engine.to_database() is first
        assert len(first.atyp("a")) == 1

    def test_engine_snapshot_invalidation_in_rebuild_mode(self):
        engine = PrimaEngine("e", maintenance="rebuild")
        engine.create_atom_type("a", {"x": "integer"})
        first = engine.to_database()
        assert engine.to_database() is first  # cached
        engine.store_atom("a", x=1)
        assert engine.to_database() is not first  # invalidated by the write
        assert len(engine.to_database().atyp("a")) == 1

    def test_engine_ddl_errors(self):
        engine = PrimaEngine("e")
        engine.create_atom_type("a", {"x": "integer"})
        with pytest.raises(StorageError):
            engine.create_atom_type("a", {"x": "integer"})
        with pytest.raises(UnknownNameError):
            engine.create_link_type("l", "a", "missing")
        with pytest.raises(UnknownNameError):
            engine.scan("missing")

    def test_engine_delete_atom_removes_links(self, geo_db):
        engine = PrimaEngine.from_database(geo_db)
        removed = engine.delete_atom("state", "SP")
        assert removed >= 1
        assert engine.get_atom("state", "SP") is None

    def test_engine_statistics(self, geo_db):
        engine = PrimaEngine.from_database(geo_db)
        engine.scan("state")
        stats = engine.statistics()
        assert stats["atoms"]["state"] == 10
        assert stats["reads"]["state"] >= 10

    def test_atom_network_views(self, geo_db):
        network = AtomNetwork(geo_db)
        assert network.degree("SP") >= 1
        assert "a7" in network.neighbours("SP") or network.neighbours("SP")
        assert network.atom_type_of("SP") == "state"
        assert len(network.reachable_from("SP", max_hops=1)) >= 2
        assert len(network.connected_components()) >= 1
        assert network.shared_atom_count("area", "net") >= 5
