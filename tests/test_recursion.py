"""Unit tests for recursive molecule types (§5 outlook, [Schö89])."""

import pytest

from repro.core.recursion import (
    RecursiveDescription,
    expand_recursive,
    recursive_molecule_type,
    transitive_closure_size,
)
from repro.datasets.bill_of_materials import build_bill_of_materials, root_parts
from repro.exceptions import SchemaError


@pytest.fixture()
def bom():
    return build_bill_of_materials(depth=3, fan_out=2, share_every=0)


@pytest.fixture()
def shared_bom():
    return build_bill_of_materials(depth=3, fan_out=3, share_every=2)


class TestRecursiveDescription:
    def test_directions(self):
        RecursiveDescription("part", "composition", "down")
        RecursiveDescription("part", "composition", "up")
        with pytest.raises(SchemaError):
            RecursiveDescription("part", "composition", "sideways")

    def test_unknown_link_type_raises_on_expansion(self, bom):
        description = RecursiveDescription("part", "uses", "down")
        root = root_parts(bom)[0]
        with pytest.raises(Exception):
            expand_recursive(bom, description, root)

    def test_link_type_must_connect_atom_type(self, bom):
        bom.define_atom_type("supplier", {"name": "string"})
        bom.define_link_type("supplies", "supplier", "supplier")
        with pytest.raises(SchemaError):
            expand_recursive(bom, RecursiveDescription("part", "supplies", "down"), root_parts(bom)[0])


class TestExpansion:
    def test_full_explosion_size(self, bom):
        root = root_parts(bom)[0]
        molecule = expand_recursive(bom, RecursiveDescription("part", "composition", "down"), root)
        # depth 3, fan-out 2, no sharing: 1 + 2 + 4 + 8 parts.
        assert len(molecule) == 15
        assert molecule.depth() == 3

    def test_levels_recorded(self, bom):
        root = root_parts(bom)[0]
        molecule = expand_recursive(bom, RecursiveDescription("part", "composition", "down"), root)
        assert len(molecule.atoms_at_level(0)) == 1
        assert len(molecule.atoms_at_level(1)) == 2
        assert len(molecule.atoms_at_level(3)) == 8

    def test_explosion_listing_sorted_by_level(self, bom):
        root = root_parts(bom)[0]
        molecule = expand_recursive(bom, RecursiveDescription("part", "composition", "down"), root)
        levels = [level for level, _ in molecule.explosion()]
        assert levels == sorted(levels)

    def test_max_depth_truncates(self, bom):
        root = root_parts(bom)[0]
        molecule = expand_recursive(
            bom, RecursiveDescription("part", "composition", "down", max_depth=1), root
        )
        assert molecule.depth() == 1
        assert len(molecule) == 3

    def test_up_direction_gives_where_used(self, bom):
        parts = bom.atyp("part")
        leaf = max(parts, key=lambda atom: atom["level"])
        molecule = expand_recursive(bom, RecursiveDescription("part", "composition", "up"), leaf)
        # The where-used chain of a leaf climbs straight to the root: one part per level.
        assert len(molecule) == 4
        assert {atom["level"] for atom in molecule.atoms} == {0, 1, 2, 3}

    def test_shared_component_reached_once(self, shared_bom):
        root = root_parts(shared_bom)[0]
        molecule = expand_recursive(
            shared_bom, RecursiveDescription("part", "composition", "down"), root
        )
        identifiers = [atom.identifier for atom in molecule.atoms]
        assert len(identifiers) == len(set(identifiers))

    def test_cycle_terminates(self):
        db = build_bill_of_materials(depth=2, fan_out=2)
        parts = list(db.atyp("part"))
        # Introduce a cycle: a leaf becomes the parent of the root.
        db.ltyp("composition").connect(parts[-1], parts[0])
        molecule = expand_recursive(
            db, RecursiveDescription("part", "composition", "down"), parts[0]
        )
        assert len(molecule) <= len(parts)


class TestRecursiveMoleculeType:
    def test_one_molecule_per_root_by_default(self, bom):
        molecule_type = recursive_molecule_type(
            bom, "explosion", RecursiveDescription("part", "composition", "down")
        )
        assert len(molecule_type) == len(bom.atyp("part"))

    def test_explicit_roots(self, bom):
        roots = root_parts(bom)
        molecule_type = recursive_molecule_type(
            bom, "explosion", RecursiveDescription("part", "composition", "down"), roots
        )
        assert len(molecule_type) == len(roots)

    def test_leaf_molecules_are_singletons(self, bom):
        molecule_type = recursive_molecule_type(
            bom, "explosion", RecursiveDescription("part", "composition", "down")
        )
        leaves = [m for m in molecule_type if m.root_atom["level"] == 3]
        assert leaves and all(len(m) == 1 for m in leaves)

    def test_transitive_closure_size(self, bom):
        sizes = transitive_closure_size(bom, RecursiveDescription("part", "composition", "down"))
        root = root_parts(bom)[0]
        assert sizes[root.identifier] == 14
        # Leaves reach nothing.
        assert min(sizes.values()) == 0

    def test_agrees_with_relational_closure(self, shared_bom):
        from repro.relational import map_database
        from repro.relational.query import relational_transitive_closure

        roots = root_parts(shared_bom)
        mapping = map_database(shared_bom)
        closures = relational_transitive_closure(
            mapping, "composition", [r.identifier for r in roots]
        )
        sizes = transitive_closure_size(
            shared_bom, RecursiveDescription("part", "composition", "down")
        )
        for root in roots:
            assert len(closures[root.identifier]) == sizes[root.identifier]
