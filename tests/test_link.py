"""Unit tests for links and link types (Definition 2)."""

import pytest

from repro.core.atom import Atom
from repro.core.link import Cardinality, Link, LinkType
from repro.exceptions import CardinalityError, DanglingLinkError, SchemaError


class TestLink:
    def test_unsorted_pair_equality(self):
        assert Link("l", "a", "b") == Link("l", "b", "a")
        assert hash(Link("l", "a", "b")) == hash(Link("l", "b", "a"))

    def test_different_link_types_not_equal(self):
        assert Link("l1", "a", "b") != Link("l2", "a", "b")

    def test_connects_and_other(self):
        link = Link("l", "a", "b")
        assert link.connects("a") and link.connects("b")
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(DanglingLinkError):
            link.other("c")

    def test_self_loop_other(self):
        link = Link("l", "a", "a")
        assert link.other("a") == "a"

    def test_given_order_preserved(self):
        link = Link("l", "parent", "child")
        assert link.given_order == ("parent", "child")

    def test_endpoint_of_type_with_atoms(self):
        parent = Atom("author", {}, identifier="a1")
        child = Atom("book", {}, identifier="b1")
        link = Link("wrote", parent, child)
        assert link.endpoint_of_type("author") == "a1"
        assert link.endpoint_of_type("book") == "b1"
        assert link.endpoint_of_type("missing") is None


class TestLinkType:
    def make(self, cardinality=Cardinality.MANY_TO_MANY):
        return LinkType("wrote", "author", "book", cardinality=cardinality)

    def test_accessors(self):
        link_type = self.make()
        assert link_type.name == "wrote"
        assert link_type.description == frozenset(("author", "book"))
        assert link_type.atom_type_names == ("author", "book")
        assert not link_type.is_reflexive

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            LinkType("", "a", "b")

    def test_reflexive(self):
        link_type = LinkType("composition", "part", "part")
        assert link_type.is_reflexive
        assert link_type.other_type("part") == "part"

    def test_other_type(self):
        link_type = self.make()
        assert link_type.other_type("author") == "book"
        assert link_type.other_type("book") == "author"
        with pytest.raises(SchemaError):
            link_type.other_type("missing")

    def test_connects_type(self):
        link_type = self.make()
        assert link_type.connects_type("author")
        assert not link_type.connects_type("publisher")

    def test_connect_and_contains(self):
        link_type = self.make()
        link = link_type.connect("a1", "b1")
        assert link in link_type
        assert len(link_type) == 1

    def test_connect_idempotent(self):
        link_type = self.make()
        link_type.connect("a1", "b1")
        link_type.connect("b1", "a1")  # unsorted pair — same link
        assert len(link_type) == 1

    def test_links_of_and_partners_of(self):
        link_type = self.make()
        link_type.connect("a1", "b1")
        link_type.connect("a1", "b2")
        assert len(link_type.links_of("a1")) == 2
        assert link_type.partners_of("a1") == frozenset({"b1", "b2"})
        assert link_type.partners_of("unknown") == frozenset()

    def test_remove_link_and_atom(self):
        link_type = self.make()
        link = link_type.connect("a1", "b1")
        link_type.connect("a1", "b2")
        link_type.remove(link)
        assert len(link_type) == 1
        removed = link_type.remove_atom("a1")
        assert removed == 1
        assert len(link_type) == 0

    def test_one_to_one_cardinality_enforced(self):
        link_type = self.make(Cardinality.ONE_TO_ONE)
        link_type.connect("a1", "b1")
        with pytest.raises(CardinalityError):
            link_type.connect("a1", "b2")
        with pytest.raises(CardinalityError):
            link_type.connect("a2", "b1")

    def test_one_to_many_cardinality_enforced(self):
        link_type = self.make(Cardinality.ONE_TO_MANY)
        link_type.connect("a1", "b1")
        link_type.connect("a1", "b2")  # one author, many books — fine
        with pytest.raises(CardinalityError):
            link_type.connect("a2", "b1")  # a book may not get a second author

    def test_many_to_many_unrestricted(self):
        link_type = self.make()
        link_type.connect("a1", "b1")
        link_type.connect("a2", "b1")
        link_type.connect("a1", "b2")
        assert len(link_type) == 3

    def test_empty_copy_and_copy(self):
        link_type = self.make()
        link_type.connect("a1", "b1")
        empty = link_type.empty_copy("other")
        assert empty.name == "other" and len(empty) == 0
        clone = link_type.copy()
        assert len(clone) == 1

    def test_restricted_to_filters_links(self):
        link_type = self.make()
        link_type.connect("a1", "b1")
        link_type.connect("a2", "b2")
        restricted = link_type.restricted_to("wrote2", {"a1"}, {"b1", "b2"})
        assert len(restricted) == 1
        assert restricted.name == "wrote2"

    def test_ordered_ids_reflexive_uses_given_order(self):
        link_type = LinkType("composition", "part", "part")
        link = link_type.connect("super", "sub")
        assert link_type._ordered_ids(link) == ("super", "sub")

    def test_validate_against_detects_dangling(self):
        from repro.core.atom import AtomType

        authors = AtomType("author", {"name": "string"})
        books = AtomType("book", {"title": "string"})
        authors.add({"name": "x"}, identifier="a1")
        books.add({"title": "y"}, identifier="b1")
        link_type = self.make()
        link_type.connect("a1", "b1")
        link_type.validate_against(authors, books)  # no error
        link_type.connect("a1", "b_missing")
        with pytest.raises(DanglingLinkError):
            link_type.validate_against(authors, books)
