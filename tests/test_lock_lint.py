"""The static concurrency lint: analyzer fixtures + the self-test.

Two halves:

* **Fixture modules** (inline sources against a tiny fixture registry)
  prove each rule fires: a seeded inversion (direct and through the call
  graph), an undeclared raw lock construction, an unknown/kind-mismatched
  factory name, a stale registry entry, an unguarded write, honored and
  malformed suppressions, and cycle detection.

* **The self-test**: ``src/repro`` itself must analyze clean — and stay
  *detectably* clean: seeding a deliberate inversion into a scratch copy
  of ``repro.storage.engine`` must flip the analyzer to a finding that
  names both locks, which proves the clean result is sensitivity, not
  blindness.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.guards import check_guards
from repro.analysis.lockorder import (
    Analysis,
    Registry,
    analyze,
    collect_sources,
)
from repro.analysis.registry import LOCKS, LockSpec, design_table
from repro.analysis.__main__ import check_design, main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")

#: A two-lock fixture registry: Low must always be taken before High.
FIXTURE_REGISTRY = Registry(
    (
        LockSpec(
            name="Store._low",
            level=10,
            kind="RLock",
            module="fixture.store",
            guards="the store registry",
        ),
        LockSpec(
            name="Store._high",
            level=20,
            kind="Lock",
            module="fixture.store",
            guards="the store feed",
        ),
    )
)

FIXTURE_HEADER = """\
from repro.analysis.runtime import make_lock, make_rlock


class Store:
    def __init__(self):
        self._low = make_rlock("Store._low")
        self._high = make_lock("Store._high")
"""


def fixture_findings(body: str, rule: str = None):
    sources = {"fixture.store": FIXTURE_HEADER + body}
    findings = analyze(sources, FIXTURE_REGISTRY)
    if rule is None:
        return findings
    return [finding for finding in findings if finding.rule == rule]


class TestInversionRule:
    def test_direct_inversion_is_reported_with_both_locks(self):
        findings = fixture_findings(
            """
    def bad(self):
        with self._high:
            with self._low:
                pass
""",
            "inversion",
        )
        assert len(findings) == 1
        message = findings[0].message
        assert "Store._low" in message and "Store._high" in message
        assert "level 10" in message and "level 20" in message

    def test_ascending_orders_are_clean(self):
        assert not fixture_findings(
            """
    def good(self):
        with self._low:
            with self._high:
                pass
"""
        )

    def test_interprocedural_inversion_names_the_path(self):
        findings = fixture_findings(
            """
    def outer(self):
        with self._high:
            self.helper()

    def helper(self):
        with self._low:
            pass
""",
            "inversion",
        )
        assert len(findings) == 1
        assert "path" in findings[0].message
        assert "Store.outer" in findings[0].message
        assert "Store.helper" in findings[0].message

    def test_rlock_reentry_is_legal(self):
        assert not fixture_findings(
            """
    def reenter(self):
        with self._low:
            with self._low:
                pass
"""
        )

    def test_acquire_call_sites_are_checked(self):
        findings = fixture_findings(
            """
    def bad(self):
        with self._high:
            self._low.acquire()
""",
            "inversion",
        )
        assert len(findings) == 1

    def test_equal_level_pair_is_an_inversion(self):
        # Same-level (per-instance family) nesting is still non-ascending.
        registry = Registry(
            (
                LockSpec("Store._low", 10, "RLock", "fixture.store", "a"),
                LockSpec("Store._high", 10, "Lock", "fixture.store", "b"),
            )
        )
        sources = {
            "fixture.store": FIXTURE_HEADER
            + """
    def bad(self):
        with self._low:
            with self._high:
                pass
"""
        }
        findings = [
            finding
            for finding in analyze(sources, registry)
            if finding.rule == "inversion"
        ]
        assert len(findings) == 1


class TestConstructionRules:
    def test_undeclared_raw_lock_is_reported(self):
        findings = fixture_findings(
            """
    def sneak(self):
        import threading
        extra = threading.Lock()
        return extra
""",
            "undeclared-lock",
        )
        assert len(findings) == 1

    def test_unknown_factory_name_is_reported(self):
        sources = {
            "fixture.store": """\
from repro.analysis.runtime import make_lock

class Store:
    def __init__(self):
        self._low = make_lock("Store._nope")
"""
        }
        findings = [
            finding
            for finding in analyze(sources, FIXTURE_REGISTRY)
            if finding.rule == "unknown-lock-name"
        ]
        assert len(findings) == 1
        assert "Store._nope" in findings[0].message

    def test_kind_mismatch_is_reported(self):
        sources = {
            "fixture.store": """\
from repro.analysis.runtime import make_lock

class Store:
    def __init__(self):
        self._low = make_lock("Store._low")
"""
        }
        findings = [
            finding
            for finding in analyze(sources, FIXTURE_REGISTRY)
            if finding.rule == "unknown-lock-name"
        ]
        assert len(findings) == 1
        assert "RLock" in findings[0].message

    def test_stale_registry_entry_is_reported(self):
        sources = {
            "fixture.store": """\
from repro.analysis.runtime import make_rlock

class Store:
    def __init__(self):
        self._low = make_rlock("Store._low")
"""
        }
        findings = [
            finding
            for finding in analyze(sources, FIXTURE_REGISTRY)
            if finding.rule == "stale-registry"
        ]
        assert len(findings) == 1
        assert "Store._high" in findings[0].message


class TestSuppressions:
    def test_suppression_with_reason_is_honored(self):
        assert not fixture_findings(
            """
    def bad(self):
        with self._high:
            with self._low:  # lock-lint: ignore[inversion] — fixture proves the suppression path
                pass
"""
        )

    def test_suppression_without_reason_is_a_finding(self):
        findings = fixture_findings(
            """
    def bad(self):
        with self._high:
            with self._low:  # lock-lint: ignore[inversion]
                pass
"""
        )
        rules = {finding.rule for finding in findings}
        # The malformed directive is reported AND does not suppress.
        assert "bad-suppression" in rules
        assert "inversion" in rules

    def test_unknown_rule_in_directive_is_a_finding(self):
        findings = fixture_findings(
            """
    def ok(self):
        with self._low:  # lock-lint: ignore[made-up-rule] — nope
            pass
""",
            "bad-suppression",
        )
        assert len(findings) == 1


class TestCycleRule:
    def test_suppressed_inversions_still_surface_as_a_cycle(self):
        findings = fixture_findings(
            """
    def forward(self):
        with self._low:
            with self._high:
                pass

    def backward(self):
        with self._high:
            with self._low:  # lock-lint: ignore[inversion] — seeded to prove cycle detection
                pass
""",
            "cycle",
        )
        assert len(findings) == 1
        assert "Store._low" in findings[0].message
        assert "Store._high" in findings[0].message


class TestGuardedWrites:
    def test_unguarded_write_is_reported(self):
        sources = {
            "fixture.store": FIXTURE_HEADER
            + """\
        self._items = {}  # guarded-by: Store._low

    def bad(self, key, value):
        self._items[key] = value
"""
        }
        findings = [
            finding
            for finding in check_guards(sources, FIXTURE_REGISTRY)
            if finding.rule == "unguarded-write"
        ]
        assert len(findings) == 1
        assert "_items" in findings[0].message
        assert "Store._low" in findings[0].message

    def test_write_under_the_lock_is_clean(self):
        sources = {
            "fixture.store": FIXTURE_HEADER
            + """\
        self._items = {}  # guarded-by: Store._low

    def good(self, key, value):
        with self._low:
            self._items[key] = value
"""
        }
        assert not check_guards(sources, FIXTURE_REGISTRY)

    def test_requires_annotation_is_honored(self):
        sources = {
            "fixture.store": FIXTURE_HEADER
            + """\
        self._items = {}  # guarded-by: Store._low

    # requires: Store._low
    def locked_helper(self, key, value):
        self._items[key] = value
"""
        }
        assert not check_guards(sources, FIXTURE_REGISTRY)

    def test_mutator_calls_are_writes(self):
        sources = {
            "fixture.store": FIXTURE_HEADER
            + """\
        self._names = []  # guarded-by: Store._low

    def bad(self, name):
        self._names.append(name)
"""
        }
        findings = [
            finding
            for finding in check_guards(sources, FIXTURE_REGISTRY)
            if finding.rule == "unguarded-write"
        ]
        assert len(findings) == 1

    def test_guard_naming_unknown_lock_is_reported(self):
        sources = {
            "fixture.store": FIXTURE_HEADER
            + """\
        self._items = {}  # guarded-by: Store._nothing
"""
        }
        findings = [
            finding
            for finding in check_guards(sources, FIXTURE_REGISTRY)
            if finding.rule == "bad-guard"
        ]
        assert len(findings) == 1


class TestSelfTest:
    """src/repro analyzes clean — and detectably so."""

    def test_package_is_clean(self):
        sources = collect_sources(SRC_REPRO)
        assert len(sources) > 50  # the whole package, not a subset
        findings = analyze(sources) + check_guards(sources)
        assert findings == [], "\n".join(
            finding.render() for finding in findings
        )

    def test_every_registered_lock_is_constructed(self):
        sources = collect_sources(SRC_REPRO)
        analysis = Analysis(sources)
        analysis.run()
        constructed = {
            literal
            for facts in analysis.modules.values()
            for _line, _kind, literal in facts.factory_calls
            if literal is not None
        }
        assert constructed == {spec.name for spec in LOCKS}

    def test_seeded_inversion_in_engine_copy_is_caught(self):
        """Append an event-lock→write-lock nesting to a scratch copy of
        ``repro.storage.engine``: the analyzer must name both locks and
        the acquisition site."""
        sources = collect_sources(SRC_REPRO)
        sources["repro.storage.engine"] += (
            "\n\n"
            "def _lint_seeded_inversion(engine: \"PrimaEngine\"):\n"
            "    with engine._event_lock:\n"
            "        with engine._write_lock:\n"
            "            pass\n"
        )
        findings = [
            finding for finding in analyze(sources) if finding.rule == "inversion"
        ]
        assert len(findings) == 1
        finding = findings[0]
        assert finding.module == "repro.storage.engine"
        assert "PrimaEngine._write_lock" in finding.message
        assert "PrimaEngine._event_lock" in finding.message

    def test_seeded_interprocedural_inversion_is_caught(self):
        """The held set must propagate through the call graph: a helper
        that legitimately takes the write lock becomes an inversion when
        called under the event lock."""
        sources = collect_sources(SRC_REPRO)
        sources["repro.storage.engine"] += (
            "\n\n"
            "def _lint_takes_write(engine: \"PrimaEngine\"):\n"
            "    with engine._write_lock:\n"
            "        pass\n"
            "\n\n"
            "def _lint_calls_under_event(engine: \"PrimaEngine\"):\n"
            "    with engine._event_lock:\n"
            "        _lint_takes_write(engine)\n"
            "\n"
        )
        findings = [
            finding for finding in analyze(sources) if finding.rule == "inversion"
        ]
        assert len(findings) == 1
        assert "_lint_takes_write" in findings[0].message
        assert "_lint_calls_under_event" in findings[0].message

    def test_seeded_raw_lock_in_engine_copy_is_caught(self):
        sources = collect_sources(SRC_REPRO)
        sources["repro.storage.engine"] += (
            "\n\ndef _lint_rogue_lock():\n"
            "    return threading.Lock()\n"
        )
        findings = [
            finding
            for finding in analyze(sources)
            if finding.rule == "undeclared-lock"
        ]
        assert len(findings) == 1
        assert findings[0].module == "repro.storage.engine"


class TestDesignTable:
    def test_design_table_lists_every_lock_in_level_order(self):
        table = design_table()
        levels = [spec.level for spec in LOCKS]
        assert levels == sorted(levels)
        for spec in LOCKS:
            assert f"`{spec.name}`" in table

    def test_repo_design_md_is_current(self):
        path = os.path.join(REPO_ROOT, "DESIGN.md")
        assert check_design(path) == []

    def test_drifted_table_is_reported_and_fixable(self, tmp_path):
        design = tmp_path / "DESIGN.md"
        design.write_text(
            "# x\n<!-- lock-table:begin -->\nstale\n<!-- lock-table:end -->\n"
        )
        findings = check_design(str(design))
        assert len(findings) == 1 and findings[0].rule == "design-drift"
        assert check_design(str(design), fix=True) == []
        assert design_table() in design.read_text()
        assert check_design(str(design)) == []

    def test_missing_markers_are_reported(self, tmp_path):
        design = tmp_path / "DESIGN.md"
        design.write_text("# no markers here\n")
        findings = check_design(str(design))
        assert len(findings) == 1
        assert "markers" in findings[0].message


class TestCLI:
    def test_cli_clean_on_the_repo(self, capsys):
        assert main([SRC_REPRO, "--design", os.path.join(REPO_ROOT, "DESIGN.md")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_exits_nonzero_on_findings(self, tmp_path, capsys):
        package = tmp_path / "badpkg"
        package.mkdir()
        (package / "__init__.py").write_text("")
        (package / "mod.py").write_text(
            "import threading\nGUARD = threading.Lock()\n"
        )
        assert main([str(package), "--no-design"]) == 1
        out = capsys.readouterr().out
        assert "undeclared-lock" in out

    def test_cli_emit_design_table(self, capsys):
        assert main(["--emit-design-table"]) == 0
        assert design_table() in capsys.readouterr().out

    def test_cli_rejects_missing_root(self, capsys):
        assert main([os.path.join(REPO_ROOT, "no-such-dir")]) == 2
