"""Unit tests for databases and the database domain (Definition 3)."""

import pytest

from repro.core.database import Database, formal_specification
from repro.core.link import Cardinality, LinkType
from repro.exceptions import (
    DanglingLinkError,
    DuplicateNameError,
    SchemaError,
    UnknownNameError,
)


class TestDatabaseSchema:
    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Database("")

    def test_define_atom_type(self):
        db = Database("db")
        at = db.define_atom_type("state", {"name": "string"})
        assert db.has_atom_type("state")
        assert db.atyp("state") is at
        assert db.atom_type_names == ("state",)

    def test_duplicate_atom_type_rejected(self):
        db = Database("db")
        db.define_atom_type("state", {"name": "string"})
        with pytest.raises(DuplicateNameError):
            db.define_atom_type("state", {"name": "string"})

    def test_atyp_unknown_raises(self):
        db = Database("db")
        with pytest.raises(UnknownNameError):
            db.atyp("missing")

    def test_atyp_with_name_collection(self):
        db = Database("db")
        db.define_atom_type("a", {"x": "integer"})
        db.define_atom_type("b", {"x": "integer"})
        types = db.atyp(["a", "b"])
        assert tuple(t.name for t in types) == ("a", "b")

    def test_define_link_type_requires_atom_types(self):
        db = Database("db")
        db.define_atom_type("a", {"x": "integer"})
        with pytest.raises(UnknownNameError):
            db.define_link_type("l", "a", "missing")

    def test_link_and_atom_type_names_share_namespace(self):
        db = Database("db")
        db.define_atom_type("a", {"x": "integer"})
        db.define_atom_type("b", {"x": "integer"})
        db.define_link_type("a-b", "a", "b")
        with pytest.raises(DuplicateNameError):
            db.define_atom_type("a-b", {"x": "integer"})
        with pytest.raises(DuplicateNameError):
            db.define_link_type("a", "a", "b")

    def test_ltyp_lookup(self):
        db = Database("db")
        db.define_atom_type("a", {"x": "integer"})
        db.define_link_type("l", "a", "a")
        assert db.ltyp("l").is_reflexive
        with pytest.raises(UnknownNameError):
            db.ltyp("missing")

    def test_link_types_of_and_between(self):
        db = Database("db")
        db.define_atom_type("a", {"x": "integer"})
        db.define_atom_type("b", {"x": "integer"})
        db.define_link_type("l1", "a", "b")
        db.define_link_type("l2", "a", "a")
        assert {lt.name for lt in db.link_types_of("a")} == {"l1", "l2"}
        assert {lt.name for lt in db.link_types_of("b")} == {"l1"}
        assert [lt.name for lt in db.link_types_between("a", "b")] == ["l1"]
        assert [lt.name for lt in db.link_types_between("a", "a")] == ["l2"]

    def test_drop_atom_type_cascades_link_types(self):
        db = Database("db")
        db.define_atom_type("a", {"x": "integer"})
        db.define_atom_type("b", {"x": "integer"})
        db.define_link_type("l", "a", "b")
        db.drop_atom_type("b")
        assert not db.has_atom_type("b")
        assert not db.has_link_type("l")

    def test_drop_link_type(self):
        db = Database("db")
        db.define_atom_type("a", {"x": "integer"})
        db.define_link_type("l", "a", "a")
        db.drop_link_type("l")
        assert not db.has_link_type("l")
        with pytest.raises(UnknownNameError):
            db.drop_link_type("l")


class TestDatabaseOccurrence:
    def test_insert_and_find_atom(self, tiny_db):
        atom = tiny_db.find_atom("a1")
        assert atom is not None and atom["name"] == "Codd"
        assert tiny_db.find_atom("nope") is None

    def test_counts_and_statistics(self, tiny_db):
        assert tiny_db.atom_count() == 5
        assert tiny_db.link_count() == 4
        stats = tiny_db.statistics()
        assert stats["atom_types"]["author"] == 2
        assert stats["link_types"]["wrote"] == 4

    def test_contains(self, tiny_db):
        assert "author" in tiny_db
        assert "wrote" in tiny_db
        assert "missing" not in tiny_db

    def test_validate_detects_dangling_link(self, tiny_db):
        tiny_db.ltyp("wrote").connect("a1", "b_missing")
        assert not tiny_db.is_valid()
        with pytest.raises(DanglingLinkError):
            tiny_db.validate()

    def test_copy_is_independent(self, tiny_db):
        clone = tiny_db.copy()
        clone.atyp("author").remove("a1")
        assert tiny_db.atyp("author").get("a1") is not None
        assert clone.atyp("author").get("a1") is None

    def test_enlarged_shares_originals_and_adds_new(self, tiny_db):
        from repro.core.atom import AtomType

        extra = AtomType("publisher", {"name": "string"})
        enlarged = tiny_db.enlarged([extra])
        assert enlarged.has_atom_type("publisher")
        assert enlarged.atyp("author") is tiny_db.atyp("author")
        assert not tiny_db.has_atom_type("publisher")

    def test_enlarged_ignores_name_clash(self, tiny_db):
        from repro.core.atom import AtomType

        clash = AtomType("author", {"name": "string"})
        enlarged = tiny_db.enlarged([clash])
        assert enlarged.atyp("author") is tiny_db.atyp("author")


class TestFormalSpecification:
    def test_specification_mentions_all_types(self, tiny_db):
        text = formal_specification(tiny_db)
        assert "author = <" in text
        assert "book = <" in text
        assert "wrote = <" in text
        assert "∈ AT*" in text and "∈ LT*" in text and "∈ DB*" in text

    def test_specification_elides_long_occurrences(self, geo_db):
        text = formal_specification(geo_db)
        assert "..." in text
