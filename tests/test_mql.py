"""Unit tests for the MQL front-end: lexer, parser, translator, interpreter (chapter 4)."""

import pytest

from repro.core.molecule import MoleculeTypeDescription
from repro.core.predicates import And, Comparison, Not, Or
from repro.exceptions import MQLSemanticError, MQLSyntaxError
from repro.mql import (
    MQLInterpreter,
    Query,
    SetOperation,
    StructureBranch,
    StructureNode,
    TokenType,
    execute,
    parse,
    structure_to_description,
    tokenize,
)
from repro.mql.ast_nodes import AttributeReference, RecursiveStructure
from repro.mql.translator import QueryTranslator


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select ALL from Where")
        assert [t.value for t in tokens[:4]] == ["SELECT", "ALL", "FROM", "WHERE"]

    def test_identifiers_and_punctuation(self):
        tokens = tokenize("state-area, (x.y);")
        types = [t.type for t in tokens[:-1]]
        assert TokenType.IDENT in types
        assert TokenType.DASH in types
        assert TokenType.COMMA in types
        assert TokenType.DOT in types
        assert TokenType.SEMICOLON in types

    def test_string_literal(self):
        tokens = tokenize("'pn'")
        assert tokens[0].type is TokenType.STRING and tokens[0].value == "pn"

    def test_unterminated_string(self):
        with pytest.raises(MQLSyntaxError):
            tokenize("'pn")

    def test_numbers(self):
        tokens = tokenize("42 3.5")
        assert tokens[0].value == 42 and isinstance(tokens[0].value, int)
        assert tokens[1].value == 3.5

    def test_number_followed_by_dot_identifier(self):
        tokens = tokenize("point.name")
        assert [t.type for t in tokens[:3]] == [TokenType.IDENT, TokenType.DOT, TokenType.IDENT]

    def test_bracketed_link_name(self):
        tokens = tokenize("[state-area]")
        assert tokens[0].type is TokenType.BRACKET_NAME
        assert tokens[0].value == "state-area"

    def test_unterminated_bracket(self):
        with pytest.raises(MQLSyntaxError):
            tokenize("[state-area")

    def test_operators(self):
        tokens = tokenize("= != <> < <= > >=")
        values = [t.value for t in tokens[:-1]]
        assert values == ["=", "!=", "<>", "<", "<=", ">", ">="]

    def test_comment_skipped(self):
        tokens = tokenize("SELECT -- a comment\nALL")
        assert [t.value for t in tokens[:2]] == ["SELECT", "ALL"]

    def test_unexpected_character(self):
        with pytest.raises(MQLSyntaxError):
            tokenize("SELECT %")

    def test_error_carries_position(self):
        try:
            tokenize("SELECT\n  %")
        except MQLSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected MQLSyntaxError")


class TestParser:
    def test_select_all_simple_chain(self):
        ast = parse("SELECT ALL FROM state-area-edge;")
        assert isinstance(ast, Query)
        assert ast.select_all
        assert ast.from_clause.molecule_name is None
        nodes = [e for e in ast.from_clause.structure.elements if isinstance(e, StructureNode)]
        assert [n.atom_type for n in nodes] == ["state", "area", "edge"]

    def test_named_molecule_type(self):
        ast = parse("SELECT ALL FROM mt_state(state-area);")
        assert ast.from_clause.molecule_name == "mt_state"

    def test_branch_group(self):
        ast = parse("SELECT ALL FROM point-edge-(area-state,net-river);")
        branch = ast.from_clause.structure.elements[-1]
        assert isinstance(branch, StructureBranch)
        assert len(branch.branches) == 2

    def test_projection_list(self):
        ast = parse("SELECT state, area FROM state-area;")
        assert not ast.select_all
        assert ast.projection == ("state", "area")

    def test_where_comparison(self):
        ast = parse("SELECT ALL FROM state-area WHERE state.hectare > 800;")
        assert ast.where.lhs == AttributeReference("hectare", "state")
        assert ast.where.operator == ">"
        assert ast.where.rhs == 800

    def test_where_boolean_precedence(self):
        ast = parse("SELECT ALL FROM state-area WHERE a = 1 OR b = 2 AND NOT c = 3;")
        # OR at the top, AND below, NOT innermost.
        assert ast.where.operator == "OR"
        and_node = ast.where.operands[1]
        assert and_node.operator == "AND"

    def test_where_parentheses(self):
        ast = parse("SELECT ALL FROM state-area WHERE (a = 1 OR b = 2) AND c = 3;")
        assert ast.where.operator == "AND"

    def test_explicit_link_names(self):
        ast = parse("SELECT ALL FROM author -[wrote]- book;")
        nodes = [e for e in ast.from_clause.structure.elements if isinstance(e, StructureNode)]
        assert nodes[1].link_name == "wrote"

    def test_recursive_structure(self):
        ast = parse("SELECT ALL FROM RECURSIVE part [composition] DOWN;")
        structure = ast.from_clause.structure
        assert isinstance(structure, RecursiveStructure)
        assert structure.atom_type == "part"
        assert structure.link_name == "composition"
        assert structure.direction == "down"

    def test_recursive_with_depth(self):
        ast = parse("SELECT ALL FROM RECURSIVE part [composition] UP 3;")
        assert ast.from_clause.structure.direction == "up"
        assert ast.from_clause.structure.max_depth == 3

    def test_set_operations_left_associative(self):
        ast = parse(
            "SELECT ALL FROM a-b UNION SELECT ALL FROM a-b DIFFERENCE SELECT ALL FROM a-b;"
        )
        assert isinstance(ast, SetOperation)
        assert ast.operator == "DIFFERENCE"
        assert isinstance(ast.left, SetOperation)
        assert ast.left.operator == "UNION"

    def test_missing_from_rejected(self):
        with pytest.raises(MQLSyntaxError):
            parse("SELECT ALL state-area;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(MQLSyntaxError):
            parse("SELECT ALL FROM a-b extra")

    def test_bad_comparison_rhs_rejected(self):
        with pytest.raises(MQLSyntaxError):
            parse("SELECT ALL FROM a-b WHERE a.x = ;")

    def test_boolean_literals(self):
        ast = parse("SELECT ALL FROM a-b WHERE a.flag = TRUE;")
        assert ast.where.rhs is True


class TestStructureTranslation:
    def test_chain(self):
        ast = parse("SELECT ALL FROM state-area-edge-point;")
        description = structure_to_description(ast.from_clause.structure)
        assert description.root == "state"
        assert description.atom_type_names == ("state", "area", "edge", "point")
        assert len(description.directed_links) == 3

    def test_branches(self):
        ast = parse("SELECT ALL FROM point-edge-(area-state,net-river);")
        description = structure_to_description(ast.from_clause.structure)
        assert description.root == "point"
        assert set(description.atom_type_names) == {"point", "edge", "area", "state", "net", "river"}
        assert len(description.children_of("edge")) == 2

    def test_repeated_atom_type_is_single_node(self):
        ast = parse("SELECT ALL FROM a-b-(c,d)-e;")
        description = structure_to_description(ast.from_clause.structure)
        # 'e' attaches to 'b' (the node before the branch group).
        assert ("-", "b", "e") in [dl.as_tuple() for dl in description.directed_links]

    def test_invalid_structure_reported_semantically(self):
        ast = parse("SELECT ALL FROM (a-b,c-d);")
        with pytest.raises(MQLSemanticError):
            structure_to_description(ast.from_clause.structure)


class TestSemanticAnalysis:
    def test_unknown_atom_type(self, geo_db):
        with pytest.raises(MQLSemanticError):
            execute(geo_db, "SELECT ALL FROM state-continent;")

    def test_unknown_link_type(self, geo_db):
        with pytest.raises(MQLSemanticError):
            execute(geo_db, "SELECT ALL FROM state -[borders]- area;")

    def test_unknown_attribute(self, geo_db):
        with pytest.raises(MQLSemanticError):
            execute(geo_db, "SELECT ALL FROM state-area WHERE state.population > 1;")

    def test_attribute_outside_structure(self, geo_db):
        with pytest.raises(MQLSemanticError):
            execute(geo_db, "SELECT ALL FROM state-area WHERE river.name = 'x';")

    def test_ambiguous_unqualified_attribute(self, geo_db):
        # 'name' occurs in state, point, river, city — ambiguous within this structure.
        with pytest.raises(MQLSemanticError):
            execute(geo_db, "SELECT ALL FROM state-area-edge-point WHERE name = 'pn';")

    def test_unqualified_attribute_resolved_when_unique(self, geo_db):
        result = execute(geo_db, "SELECT ALL FROM state-area WHERE hectare > 800;")
        assert len(result) == 4

    def test_projection_must_retain_root(self, geo_db):
        with pytest.raises(MQLSemanticError):
            execute(geo_db, "SELECT area FROM state-area;")

    def test_projection_unknown_type(self, geo_db):
        with pytest.raises(MQLSemanticError):
            execute(geo_db, "SELECT state, river FROM state-area;")

    def test_recursive_link_resolution(self):
        from repro.datasets.bill_of_materials import build_bill_of_materials

        bom = build_bill_of_materials(depth=2, fan_out=2)
        result = execute(bom, "SELECT ALL FROM RECURSIVE part DOWN;")
        assert len(result) == len(bom.atyp("part"))


class TestInterpreter:
    def test_paper_statement_one(self, geo_db):
        result = execute(geo_db, "SELECT ALL FROM mt_state(state-area-edge-point);")
        assert len(result) == 10
        assert result.molecule_type.name == "mt_state"

    def test_paper_statement_two(self, geo_db):
        result = execute(
            geo_db,
            "SELECT ALL FROM point-edge-(area-state,net-river) WHERE point.name = 'pn';",
        )
        assert len(result) == 1
        states = sorted(a["code"] for a in result.molecules[0].atoms_of_type("state"))
        assert states == ["GO", "MG", "MS", "SP"]

    def test_projection_applied(self, geo_db):
        result = execute(geo_db, "SELECT state, area FROM mt_state(state-area-edge-point);")
        assert all(len(m) == 2 for m in result)

    def test_to_dicts(self, geo_db):
        result = execute(geo_db, "SELECT ALL FROM state-area WHERE state.code = 'SP';")
        dicts = result.to_dicts()
        assert len(dicts) == 1
        assert dicts[0]["code"] == "SP"
        assert dicts[0]["area"]

    def test_where_conjunction(self, geo_db):
        result = execute(
            geo_db,
            "SELECT ALL FROM state-area WHERE state.hectare > 700 AND state.code != 'BA';",
        )
        assert {m.root_atom["code"] for m in result} == {"GO", "MG", "MS", "SP"}

    def test_recursive_with_where(self):
        from repro.datasets.bill_of_materials import build_bill_of_materials

        bom = build_bill_of_materials(depth=3, fan_out=2)
        result = execute(bom, "SELECT ALL FROM RECURSIVE part [composition] DOWN WHERE part.level = 0;")
        assert len(result) == 1
        assert len(result.molecules[0]) == 15

    def test_explain_lists_algebra_operations(self, geo_db):
        interpreter = MQLInterpreter(geo_db)
        plan = interpreter.explain(
            "SELECT state, area FROM mt_state(state-area-edge-point) WHERE state.hectare > 800;"
        )
        assert any("α" in line for line in plan)
        assert any("Σ" in line for line in plan)
        assert any("Π" in line for line in plan)

    def test_explain_set_operation(self, geo_db):
        interpreter = MQLInterpreter(geo_db)
        plan = interpreter.explain(
            "SELECT ALL FROM state-area UNION SELECT ALL FROM state-area;"
        )
        assert any("Ω" in line for line in plan)

    def test_union_difference_intersect(self, geo_db):
        union = execute(
            geo_db,
            "SELECT ALL FROM state-area WHERE state.hectare > 800 "
            "UNION SELECT ALL FROM state-area WHERE state.code = 'SP';",
        )
        assert len(union) == 5
        difference = execute(
            geo_db,
            "SELECT ALL FROM state-area DIFFERENCE SELECT ALL FROM state-area WHERE state.hectare > 800;",
        )
        assert len(difference) == 6
        intersect = execute(
            geo_db,
            "SELECT ALL FROM state-area WHERE state.hectare > 800 "
            "INTERSECT SELECT ALL FROM state-area WHERE state.code = 'MG';",
        )
        assert len(intersect) == 1

    def test_result_iteration_and_len(self, geo_db):
        result = execute(geo_db, "SELECT ALL FROM state-area;")
        assert len(list(result)) == len(result) == 10
