"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Database, load_geography
from repro.core.molecule import MoleculeTypeDescription
from repro.datasets.geography import mt_state_description, point_neighborhood_description


@pytest.fixture()
def geo_db() -> Database:
    """A fresh copy of the Brazil geographic database for every test."""
    return load_geography()


@pytest.fixture(scope="session")
def geo_db_session() -> Database:
    """A session-wide (read-only) Brazil database for derivation-only tests."""
    return load_geography()


@pytest.fixture()
def mt_state_desc() -> MoleculeTypeDescription:
    atom_types, directed_links = mt_state_description()
    return MoleculeTypeDescription(atom_types, directed_links)


@pytest.fixture()
def point_neighborhood_desc() -> MoleculeTypeDescription:
    atom_types, directed_links = point_neighborhood_description()
    return MoleculeTypeDescription(atom_types, directed_links)


@pytest.fixture()
def tiny_db() -> Database:
    """A tiny two-type database used by the unit tests: authors and books."""
    db = Database("tiny")
    db.define_atom_type("author", {"name": "string", "country": "string"})
    db.define_atom_type("book", {"title": "string", "year": "integer"})
    db.define_link_type("wrote", "author", "book")
    a1 = db.insert_atom("author", identifier="a1", name="Codd", country="UK")
    a2 = db.insert_atom("author", identifier="a2", name="Ullman", country="US")
    b1 = db.insert_atom("book", identifier="b1", title="Relational Model", year=1970)
    b2 = db.insert_atom("book", identifier="b2", title="Principles", year=1980)
    b3 = db.insert_atom("book", identifier="b3", title="Survey", year=1985)
    db.connect("wrote", a1, b1)
    db.connect("wrote", a2, b2)
    db.connect("wrote", a1, b3)
    db.connect("wrote", a2, b3)  # shared subobject
    return db
