"""Consistency checks between the documentation and the repository contents.

DESIGN.md promises a module for every system and a benchmark target for every
experiment; EXPERIMENTS.md promises one row per experiment id.  These tests
keep the documentation honest as the code evolves.
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestDesignDocument:
    def test_design_exists_and_confirms_paper(self):
        text = read("DESIGN.md")
        assert "Extending the Relational Algebra to Capture Complex Objects" in text
        assert "VLDB" in text and "1989" in text

    def test_every_inventory_module_imports(self):
        text = read("DESIGN.md")
        modules = set(re.findall(r"`(repro(?:\.[a-z_]+)+)`", text))
        assert modules, "DESIGN.md must name the implementing modules"
        for module in sorted(modules):
            importlib.import_module(module)

    def test_every_bench_target_exists(self):
        text = read("DESIGN.md")
        targets = set(re.findall(r"`benchmarks/(bench_[a-z0-9_]+\.py)`", text))
        assert len(targets) >= 11, "one bench target per experiment id"
        for target in sorted(targets):
            assert (ROOT / "benchmarks" / target).exists(), f"missing {target}"

    def test_every_experiment_id_in_experiments_md(self):
        design = read("DESIGN.md")
        experiments = read("EXPERIMENTS.md")
        ids = set(re.findall(r"\bE-(?:FIG\d|THM\d|MQL|PERF\d)\b", design))
        assert ids
        for experiment_id in sorted(ids):
            assert experiment_id in experiments, f"{experiment_id} missing from EXPERIMENTS.md"


class TestReadme:
    def test_readme_quickstart_code_runs(self):
        """The first fenced Python block of the README must execute as written."""
        text = read("README.md")
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.S)
        assert blocks, "README must contain a quickstart code block"
        namespace: dict = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)  # noqa: S102

    def test_readme_examples_table_matches_directory(self):
        text = read("README.md")
        referenced = set(re.findall(r"`examples/([a-z_]+\.py)`", text))
        on_disk = {path.name for path in (ROOT / "examples").glob("*.py")}
        assert referenced == on_disk

    def test_examples_directory_has_quickstart_and_scenarios(self):
        on_disk = {path.name for path in (ROOT / "examples").glob("*.py")}
        assert "quickstart.py" in on_disk
        assert len(on_disk) >= 3


class TestPublicApi:
    def test_dunder_all_resolves(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ names missing attribute {name}"

    def test_core_dunder_all_resolves(self):
        core = importlib.import_module("repro.core")
        for name in core.__all__:
            assert hasattr(core, name)

    def test_version_is_declared(self):
        import repro

        assert re.match(r"^\d+\.\d+\.\d+$", repro.__version__)
