"""MQL DML: grammar, translation, atomic execution and EXPLAIN reporting.

Covers the three manipulation statements of the write pipeline:

* ``INSERT <structure> VALUES {…}`` — nested object literals, shared
  subobjects via ``_id``, semantic rejection of unknown keys;
* ``DELETE [CASCADE] [name] FROM <structure> [WHERE …]`` — the qualifying
  read is a full molecule query the planner optimizes;
* ``MODIFY <atom type> FROM <structure> SET … [WHERE …]`` — in-place updates
  preserving atom identity.

Every statement is atomic: a failure halfway through (the partial-insert
regression of the write-pipeline issue) must leave no orphan atoms or
dangling links.
"""

from __future__ import annotations

import pytest

from repro.datasets.bill_of_materials import build_bill_of_materials
from repro.exceptions import MADError, ManipulationError, MQLSemanticError, MQLSyntaxError
from repro.mql import execute, parse
from repro.mql.ast_nodes import (
    DeleteStatement,
    ExplainStatement,
    InsertStatement,
    ModifyStatement,
)
from repro.storage.engine import PrimaEngine


class TestDMLParsing:
    def test_parse_insert(self):
        ast = parse(
            "INSERT author - book VALUES {name: 'Date', country: 'UK', "
            "book: {title: 'Intro', year: 1990}};"
        )
        assert isinstance(ast, InsertStatement)
        assert ast.data["name"] == "Date"
        assert ast.data["book"] == {"title": "Intro", "year": 1990}

    def test_parse_insert_child_list_and_literals(self):
        ast = parse(
            "INSERT author - book VALUES {name: 'D', active: TRUE, balance: -2.5, "
            "book: ({title: 'A', year: 1}, {_id: 'b3'})};"
        )
        assert ast.data["active"] is True
        assert ast.data["balance"] == -2.5
        assert ast.data["book"] == [{"title": "A", "year": 1}, {"_id": "b3"}]

    def test_parse_insert_named_structure(self):
        ast = parse("INSERT oeuvre(author - book) VALUES {name: 'X'};")
        assert ast.from_clause.molecule_name == "oeuvre"

    def test_parse_delete_with_molecule_name_and_cascade(self):
        ast = parse("DELETE CASCADE oeuvre FROM author - book WHERE author.name = 'X';")
        assert isinstance(ast, DeleteStatement)
        assert ast.cascade is True
        assert ast.from_clause.molecule_name == "oeuvre"
        assert ast.where is not None

    def test_parse_modify(self):
        ast = parse(
            "MODIFY book FROM author - book SET year = 2001, title = 'New' "
            "WHERE author.name = 'Codd';"
        )
        assert isinstance(ast, ModifyStatement)
        assert ast.target == "book"
        assert [(a.attribute.attribute, a.value) for a in ast.assignments] == [
            ("year", 2001),
            ("title", "New"),
        ]

    def test_modify_attribute_named_identifier(self):
        """Regression: attribute names colliding with parameter names work."""
        from repro.core.database import Database

        db = Database("docs")
        db.define_atom_type("doc", {"identifier": "string", "body": "string"})
        db.atyp("doc").add({"identifier": "X", "body": "b"}, identifier="d1")
        result = execute(db, "MODIFY doc FROM doc SET identifier = 'Z';")
        assert result.write_summary.atoms_modified == 1
        assert db.atyp("doc").get("d1")["identifier"] == "Z"

    def test_negative_literals_in_where_and_set(self, tiny_db):
        """Regression: the WHERE grammar accepts the same literals as SET."""
        execute(tiny_db, "MODIFY book FROM author - book SET year = -5 WHERE year = -1;")
        execute(tiny_db, "MODIFY book FROM author - book SET year = 3 WHERE year = -5;")
        result = execute(tiny_db, "SELECT ALL FROM author - book WHERE book.year = 3;")
        assert len(result) == 0  # no book ever had year -1, so nothing changed

    def test_parse_explain_dml(self):
        ast = parse("EXPLAIN DELETE FROM author - book WHERE author.name = 'X';")
        assert isinstance(ast, ExplainStatement)
        assert isinstance(ast.statement, DeleteStatement)

    def test_syntax_errors(self):
        with pytest.raises(MQLSyntaxError):
            parse("INSERT author - book {name: 'X'};")  # missing VALUES
        with pytest.raises(MQLSyntaxError):
            parse("INSERT author VALUES {name 'X'};")  # missing colon
        with pytest.raises(MQLSyntaxError):
            parse("MODIFY book FROM author - book SET year > 2001;")  # not '='
        with pytest.raises(MQLSyntaxError):
            parse("DELETE author - book;")  # missing FROM

    def test_semantic_errors(self, tiny_db):
        with pytest.raises(MQLSemanticError):
            execute(tiny_db, "INSERT author - book VALUES {isbn: '1'};")
        with pytest.raises(MQLSemanticError):
            execute(tiny_db, "MODIFY state FROM author - book SET name = 'X';")
        with pytest.raises(MQLSemanticError):
            execute(tiny_db, "MODIFY book FROM author - book SET publisher = 'P';")
        with pytest.raises(MQLSemanticError):
            execute(tiny_db, "DELETE FROM nowhere - book;")


class TestDMLExecution:
    def test_insert_round_trip(self, tiny_db):
        result = execute(
            tiny_db,
            "INSERT author - book VALUES {name: 'Date', country: 'UK', "
            "book: {title: 'Intro', year: 1990}};",
        )
        assert result.write_summary.operation == "insert"
        assert result.write_summary.atoms_inserted == 2
        assert result.write_summary.links_inserted == 1
        assert result.affected_count == 1
        molecule = result.molecules[0]
        assert molecule.root_atom["name"] == "Date"
        assert len(tiny_db.atyp("author")) == 3
        follow_up = execute(tiny_db, "SELECT ALL FROM author - book WHERE author.name = 'Date';")
        assert len(follow_up) == 1

    def test_insert_shared_subobject(self, tiny_db):
        execute(
            tiny_db,
            "INSERT author - book VALUES {name: 'Date', country: 'UK', book: {_id: 'b3'}};",
        )
        assert len(tiny_db.atyp("book")) == 3  # b3 reused, not copied
        assert len(tiny_db.ltyp("wrote").links_of("b3")) == 3

    def test_delete_keeps_shared_subobjects(self, tiny_db):
        result = execute(tiny_db, "DELETE FROM author - book WHERE author.name = 'Ullman';")
        assert result.write_summary.molecules_affected == 1
        assert result.write_summary.atoms_removed == 2  # a2 and exclusive b2
        assert result.write_summary.atoms_kept == 1  # shared b3 survives
        assert tiny_db.atyp("book").get("b3") is not None
        assert tiny_db.atyp("author").get("a2") is None
        tiny_db.validate()

    def test_delete_cascade(self, tiny_db):
        execute(tiny_db, "DELETE CASCADE FROM author - book WHERE author.name = 'Ullman';")
        assert tiny_db.atyp("book").get("b3") is None
        tiny_db.validate()

    def test_delete_without_where_deletes_all(self, tiny_db):
        result = execute(tiny_db, "DELETE FROM author - book;")
        assert result.write_summary.molecules_affected == 2
        assert len(tiny_db.atyp("author")) == 0
        assert len(tiny_db.ltyp("wrote")) == 0

    def test_modify_preserves_identity_and_links(self, tiny_db):
        result = execute(
            tiny_db,
            "MODIFY book FROM author - book SET year = 1986 WHERE author.name = 'Codd';",
        )
        # Codd wrote b1 and the shared b3; both belong to the qualifying molecule.
        assert result.write_summary.atoms_modified == 2
        assert tiny_db.atyp("book").get("b1")["year"] == 1986
        assert tiny_db.atyp("book").get("b3")["year"] == 1986
        assert len(tiny_db.ltyp("wrote").links_of("b3")) == 2

    def test_modify_shared_atom_updated_once(self, tiny_db):
        result = execute(tiny_db, "MODIFY book FROM author - book SET year = 2000;")
        # b3 occurs in both molecules but is modified exactly once.
        assert result.write_summary.atoms_modified == 3
        assert result.write_summary.molecules_affected == 2

    def test_recursive_delete_and_modify(self):
        bom = build_bill_of_materials(depth=2, fan_out=2, n_roots=2)
        execute(
            bom,
            "MODIFY part FROM RECURSIVE part [composition] DOWN SET cost = 1.0 "
            "WHERE part.part_no = 'P00001';",
        )
        # The whole sub-assembly of P00001 was updated, other roots untouched.
        touched = [a for a in bom.atyp("part") if a["cost"] == 1.0]
        assert len(touched) == 7
        result = execute(
            bom,
            "DELETE FROM RECURSIVE part [composition] DOWN WHERE part.part_no = 'P00001';",
        )
        assert result.write_summary.molecules_affected == 1
        assert bom.atyp("part").get("P00001") is None
        bom.validate()


class TestDMLAtomicity:
    def test_partial_insert_rolls_back_completely(self, tiny_db):
        """Regression: a failed insert must leave no orphan atoms or links.

        The first child is valid and gets created; the second violates the
        ``year`` integer domain at execution time (the statement is
        semantically well-formed), which must undo the root, the first child
        and every link.
        """
        atoms_before = tiny_db.atom_count()
        links_before = tiny_db.link_count()
        with pytest.raises(MADError):
            execute(
                tiny_db,
                "INSERT author - book VALUES {name: 'Date', country: 'UK', "
                "book: ({title: 'Good', year: 1990}, {title: 'Bad', year: 'not-a-year'})};",
            )
        assert tiny_db.atom_count() == atoms_before
        assert tiny_db.link_count() == links_before
        tiny_db.validate()

    def test_partial_insert_rolls_back_on_programmatic_api(self, tiny_db):
        """The manipulation API rides the same undo log (satellite regression)."""
        from repro.core.molecule import MoleculeTypeDescription
        from repro.manipulation import insert_molecule

        description = MoleculeTypeDescription(
            ["author", "book"], [("wrote", "author", "book")]
        )
        atoms_before = tiny_db.atom_count()
        links_before = tiny_db.link_count()
        with pytest.raises(MADError):
            insert_molecule(
                tiny_db,
                description,
                {
                    "name": "Date",
                    "country": "UK",
                    "book": [
                        {"title": "Good", "year": 1990},
                        {"title": "Bad", "year": "not-a-year"},
                    ],
                },
            )
        assert tiny_db.atom_count() == atoms_before
        assert tiny_db.link_count() == links_before
        tiny_db.validate()

    def test_failed_modify_changes_nothing(self, tiny_db):
        with pytest.raises(ManipulationError):
            execute(tiny_db, "MODIFY book FROM author - book SET year = 'NaN';")
        assert tiny_db.atyp("book").get("b1")["year"] == 1970
        assert tiny_db.atyp("book").get("b2")["year"] == 1980


class TestDMLExplain:
    def test_explain_delete_reports_optimized_read(self, tiny_db):
        atoms_before = tiny_db.atom_count()
        result = execute(
            tiny_db, "EXPLAIN DELETE FROM author - book WHERE author.name = 'Codd';"
        )
        assert "δ delete" in result.explanation
        assert "push_down_restriction" in result.explanation
        assert "root filter" in result.explanation
        # EXPLAIN must not execute: nothing deleted, empty result.
        assert tiny_db.atom_count() == atoms_before
        assert len(result) == 0
        assert result.plan_choice is not None

    def test_explain_insert_and_modify(self, tiny_db):
        insert = execute(tiny_db, "EXPLAIN INSERT author - book VALUES {name: 'X'};")
        assert "ι insert" in insert.explanation
        modify = execute(
            tiny_db,
            "EXPLAIN MODIFY book FROM author - book SET year = 1 WHERE author.name = 'Codd';",
        )
        assert "μ modify" in modify.explanation
        assert modify.plan_choice is not None


class TestEngineDML:
    """All three DML statements round-trip through ``PrimaEngine.query``."""

    @pytest.fixture()
    def prima(self, geo_db):
        return PrimaEngine.from_database(geo_db)

    def test_insert_reaches_the_stores(self, prima):
        result = prima.query(
            "INSERT state - area VALUES {name: 'Tocantins', code: 'TO', hectare: 500, "
            "area: {area_id: 'a_to', kind: 'state-border'}};"
        )
        assert result.write_summary.atoms_inserted == 2
        assert len(prima.lookup("state", "code", "TO")) == 1
        assert len(prima.query("SELECT ALL FROM state-area WHERE state.code = 'TO';")) == 1

    def test_delete_reaches_the_stores(self, prima):
        before = len(prima.scan("state"))
        result = prima.query("DELETE FROM state - area WHERE state.code = 'RJ';")
        assert result.write_summary.molecules_affected == 1
        assert len(prima.scan("state")) == before - 1
        assert len(prima.lookup("state", "code", "RJ")) == 0

    def test_modify_reaches_the_stores(self, prima):
        prima.query("MODIFY state FROM state - area SET hectare = 901 WHERE state.code = 'SP';")
        assert prima.lookup("state", "code", "SP")[0]["hectare"] == 901

    def test_explain_delete_on_engine(self, prima):
        result = prima.query("EXPLAIN DELETE FROM state - area WHERE state.code = 'SP';")
        assert "δ delete" in result.explanation
        assert "optimized plan" in result.explanation
        assert len(prima.lookup("state", "code", "SP")) == 1  # not executed

    def test_dml_rollback_keeps_engine_coherent(self, prima):
        atoms_before = prima.to_database().atom_count()
        with pytest.raises(MADError):
            prima.query(
                "INSERT state - area VALUES {name: 'Bad', code: 'XX', "
                "hectare: 'not-an-integer'};"
            )
        assert prima.to_database().atom_count() == atoms_before
        assert len(prima.lookup("state", "code", "XX")) == 0
        assert prima.to_database().is_valid()
