"""Fault injection: crash at every WAL boundary, recover the committed prefix.

The durability contract under test: **a crash at any injected point after a
commit returns loses no committed data** — recovery replays the log into a
state byte-identical to the pre-crash committed head, torn final records are
discarded by checksum, and ``checkpoint()`` truncates the log while
preserving the guarantee.

Two injection mechanisms are exercised:

* **truncation** — a reference run records the WAL byte size and the full
  store state after every commit; copies of the log cut at every record
  boundary (and at mid-record offsets, simulating torn writes) must recover
  to exactly the state of the longest committed prefix;
* **``CrashingWAL``** — a fault-injecting WAL double that dies (with a
  partial, torn append) once a byte budget is exhausted, killing the process
  state mid-workload; recovery from the directory must again yield the
  committed prefix.

A hypothesis sweep drives random commit/crash interleavings through the same
assertion.  Runs are made byte-reproducible by resetting the atom surrogate
counter before each build.
"""

import json
import os
import shutil
from pathlib import Path
from typing import Callable, List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atom import reset_surrogate_counter
from repro.storage import DurabilityConfig, PrimaEngine, WriteAheadLog, read_wal
from repro.storage.wal import FSYNC_ALWAYS


class SimulatedCrash(RuntimeError):
    """Raised by :class:`CrashingWAL` when its byte budget is exhausted."""


class CrashingWAL(WriteAheadLog):
    """A WAL double that dies mid-append after *crash_after_bytes* bytes.

    The bytes up to the budget are written (and flushed + fsynced, so the
    torn record really is on disk) before :class:`SimulatedCrash` is raised —
    the worst-case torn write a power failure can produce.
    """

    def __init__(self, path, fsync=FSYNC_ALWAYS, group_commit=8, crash_after_bytes=None):
        super().__init__(path, fsync=fsync, group_commit=group_commit)
        self._budget = crash_after_bytes

    def _write_bytes(self, blob: bytes) -> None:
        if self._budget is None:
            super()._write_bytes(blob)
            return
        if len(blob) > self._budget:
            torn = blob[: self._budget]
            if torn:
                super()._write_bytes(torn)
            self._file.flush()
            os.fsync(self._file.fileno())
            raise SimulatedCrash(
                f"simulated crash: {len(torn)} of {len(blob)} bytes of the "
                "final record reached disk"
            )
        self._budget -= len(blob)
        super()._write_bytes(blob)

    def _rewind_failed_append(self, size: int) -> None:
        """A dead process runs no cleanup: the torn record stays on disk."""


def crashing_factory(crash_after_bytes: int) -> Callable[..., WriteAheadLog]:
    """A ``DurabilityConfig.wal_factory`` producing a budgeted CrashingWAL."""

    def factory(path, fsync=FSYNC_ALWAYS, group_commit=8):
        return CrashingWAL(
            path, fsync=fsync, group_commit=group_commit, crash_after_bytes=crash_after_bytes
        )

    return factory


# -------------------------------------------------------- scripted workload


def build_engine(directory, wal_factory=None) -> PrimaEngine:
    """A small parts/suppliers engine with a deterministic surrogate space."""
    reset_surrogate_counter()
    config = DurabilityConfig(directory, fsync=FSYNC_ALWAYS, wal_factory=wal_factory)
    engine = PrimaEngine("crashbox", durability=config)
    engine.create_atom_type("part", {"part_no": "string", "cost": "integer"})
    engine.create_atom_type("supplier", {"name": "string"})
    engine.create_link_type("supplies", "supplier", "part")
    return engine


def op_insert_p1(engine):
    engine.query("INSERT part VALUES {part_no: 'P1', cost: 10};")


def op_insert_p2(engine):
    engine.query("INSERT part VALUES {part_no: 'P2', cost: 20};")


def op_store_supplier(engine):
    engine.store_atom("supplier", identifier="s1", name="ACME")


def op_connect(engine):
    engine.connect("supplies", "s1", "part#1")


def op_modify(engine):
    engine.query("MODIFY part FROM part SET cost = 99 WHERE part.part_no = 'P1';")


def op_session_burst(engine):
    engine.query("BEGIN WORK;")
    engine.query("INSERT part VALUES {part_no: 'P3', cost: 30};")
    engine.query("MODIFY part FROM part SET cost = 31 WHERE part.part_no = 'P3';")
    engine.query("COMMIT WORK;")


def op_delete_p2(engine):
    engine.query("DELETE FROM part WHERE part.part_no = 'P2';")


def op_delete_atom(engine):
    engine.delete_atom("part", "part#1")


#: Each workload step produces exactly one commit record (the session burst
#: buffers its three statements into one record at COMMIT WORK).
WORKLOAD: Tuple[Callable, ...] = (
    op_insert_p1,
    op_insert_p2,
    op_store_supplier,
    op_connect,
    op_modify,
    op_session_burst,
    op_delete_p2,
    op_delete_atom,
)


def store_state(engine: PrimaEngine) -> str:
    """A byte-stable fingerprint of the engine's stores (the durable truth)."""
    atoms = {
        name: {atom.identifier: atom.values for atom in store}
        for name, store in engine._atom_stores.items()
    }
    links = {
        name: sorted(sorted(link.given_order) for link in store)
        for name, store in engine._link_stores.items()
    }
    return json.dumps({"atoms": atoms, "links": links}, sort_keys=True, default=str)


def reference_run(directory) -> Tuple[List[int], List[str]]:
    """Run the workload; return (WAL size, state fingerprint) per boundary.

    Boundary 0 is the post-DDL state (before the first commit); boundary i
    (1-based) is the state after workload step i.
    """
    engine = build_engine(directory)
    boundaries = [engine.wal.bytes_written]
    states = [store_state(engine)]
    for step in WORKLOAD:
        step(engine)
        boundaries.append(engine.wal.bytes_written)
        states.append(store_state(engine))
    engine.close()
    return boundaries, states


def recover_truncated(source_dir, target_dir, cut: int) -> PrimaEngine:
    """Copy *source_dir* with the WAL cut at byte *cut* and recover from it."""
    target_dir = Path(target_dir)
    if target_dir.exists():
        shutil.rmtree(target_dir)
    target_dir.mkdir(parents=True)
    checkpoint = Path(source_dir) / "checkpoint.json"
    if checkpoint.exists():
        shutil.copy(checkpoint, target_dir / "checkpoint.json")
    wal_bytes = (Path(source_dir) / "wal.log").read_bytes()
    (target_dir / "wal.log").write_bytes(wal_bytes[:cut])
    reset_surrogate_counter()
    return PrimaEngine("crashbox", durability=DurabilityConfig(target_dir))


def expected_state(boundaries: List[int], states: List[str], cut: int) -> str:
    """The committed-prefix state a recovery from byte *cut* must produce."""
    best = 0
    for index, size in enumerate(boundaries):
        if size <= cut:
            best = index
    return states[best]


def assert_committed_prefix(
    recovered: PrimaEngine, boundaries: List[int], states: List[str], cut: int
) -> None:
    """The core contract: recovery from byte *cut* yields the committed prefix.

    For cuts inside the DDL prologue (before the first commit) no occurrence
    data existed yet — the recovered catalog is a prefix of the DDL and every
    occurrence is empty; from the first commit boundary on, the recovered
    state must be byte-identical to the longest committed prefix.
    """
    if cut < boundaries[0]:
        payload = json.loads(store_state(recovered))
        assert all(not atoms for atoms in payload["atoms"].values()), f"byte cut {cut}"
        assert all(not links for links in payload["links"].values()), f"byte cut {cut}"
    else:
        assert store_state(recovered) == expected_state(boundaries, states, cut), (
            f"byte cut {cut}"
        )


# ------------------------------------------------------------- record-level


def test_crash_at_every_record_boundary_recovers_the_committed_prefix(tmp_path):
    boundaries, states = reference_run(tmp_path / "ref")
    assert len(set(boundaries)) == len(boundaries), "every step must append"
    for index, cut in enumerate(boundaries):
        recovered = recover_truncated(tmp_path / "ref", tmp_path / "rec", cut)
        assert store_state(recovered) == states[index], f"boundary {index}"
        assert recovered.recovery.discarded_bytes == 0
        recovered.close()


def test_torn_final_record_is_discarded(tmp_path):
    boundaries, states = reference_run(tmp_path / "ref")
    # Cut inside every record: just past the previous boundary (torn header),
    # mid-payload, and one byte short of complete.
    for index in range(1, len(boundaries)):
        lo, hi = boundaries[index - 1], boundaries[index]
        for cut in {lo + 1, lo + 4, (lo + hi) // 2, hi - 1}:
            recovered = recover_truncated(tmp_path / "ref", tmp_path / "rec", cut)
            assert store_state(recovered) == states[index - 1], (
                f"mid-record cut {cut} in ({lo}, {hi})"
            )
            assert recovered.recovery.discarded_bytes == cut - lo
            recovered.close()


def test_corrupt_record_discards_it_and_the_tail(tmp_path):
    boundaries, states = reference_run(tmp_path / "ref")
    wal = (tmp_path / "ref" / "wal.log").read_bytes()
    # Flip one payload byte of the fourth commit record: recovery must keep
    # the three records before it and drop it plus everything after.
    offset = boundaries[3] + 12
    corrupted = wal[:offset] + bytes([wal[offset] ^ 0xFF]) + wal[offset + 1 :]
    target = tmp_path / "rec"
    target.mkdir()
    (target / "wal.log").write_bytes(corrupted)
    reset_surrogate_counter()
    recovered = PrimaEngine("crashbox", durability=DurabilityConfig(target))
    assert store_state(recovered) == states[3]
    assert recovered.recovery.discarded_bytes == len(wal) - boundaries[3]
    recovered.close()


def test_crashing_wal_dies_with_a_torn_append_and_recovery_survives(tmp_path):
    boundaries, states = reference_run(tmp_path / "ref")
    # Budgets that land mid-record for every commit record of the workload.
    for index in range(1, len(boundaries)):
        budget = (boundaries[index - 1] + boundaries[index]) // 2
        crash_dir = tmp_path / f"crash{index}"
        engine = build_engine(crash_dir, wal_factory=crashing_factory(budget))
        with pytest.raises(SimulatedCrash):
            for step in WORKLOAD:
                step(engine)
        # The process is "dead"; only the directory survives.
        del engine
        reset_surrogate_counter()
        recovered = PrimaEngine("crashbox", durability=DurabilityConfig(crash_dir))
        assert store_state(recovered) == expected_state(boundaries, states, budget)
        assert recovered.recovery.discarded_bytes > 0  # the torn append
        recovered.close()


def test_recovered_engine_keeps_logging_and_surrogates_never_collide(tmp_path):
    boundaries, states = reference_run(tmp_path / "ref")
    recovered = recover_truncated(tmp_path / "ref", tmp_path / "rec", boundaries[-1])
    # New inserts on the recovered engine must not collide with replayed
    # surrogate identifiers, and must be durable in turn.
    recovered.query("INSERT part VALUES {part_no: 'P9', cost: 90};")
    recovered.close()
    reset_surrogate_counter()
    second = PrimaEngine("crashbox", durability=DurabilityConfig(tmp_path / "rec"))
    part_nos = sorted(atom.get("part_no") for atom in second.scan("part"))
    assert "P9" in part_nos
    assert len(part_nos) == len(set(part_nos))
    second.close()


# -------------------------------------------------------------- checkpoints


def test_checkpoint_truncates_and_preserves_committed_data(tmp_path):
    engine = build_engine(tmp_path / "dir")
    op_insert_p1(engine)
    op_insert_p2(engine)
    pre_checkpoint = store_state(engine)
    info = engine.checkpoint()
    assert info["checkpoints"] == 1
    assert engine.wal.bytes_written == 0
    # Crash with an empty log: the checkpoint alone carries the state.
    engine.close()
    reset_surrogate_counter()
    recovered = PrimaEngine("crashbox", durability=DurabilityConfig(tmp_path / "dir"))
    assert store_state(recovered) == pre_checkpoint
    assert recovered.recovery.checkpoint_loaded
    assert recovered.recovery.records_replayed == 0
    recovered.close()


def test_crash_after_checkpoint_replays_only_the_tail(tmp_path):
    directory = tmp_path / "dir"
    engine = build_engine(directory)
    op_insert_p1(engine)
    engine.checkpoint()
    tail_boundaries = [engine.wal.bytes_written]
    tail_states = [store_state(engine)]
    for step in (op_insert_p2, op_modify, op_session_burst, op_delete_p2):
        step(engine)
        tail_boundaries.append(engine.wal.bytes_written)
        tail_states.append(store_state(engine))
    engine.close()
    wal = (directory / "wal.log").read_bytes()
    for index, cut in enumerate(tail_boundaries):
        target = tmp_path / "rec"
        if target.exists():
            shutil.rmtree(target)
        target.mkdir()
        shutil.copy(directory / "checkpoint.json", target / "checkpoint.json")
        (target / "wal.log").write_bytes(wal[:cut])
        reset_surrogate_counter()
        recovered = PrimaEngine("crashbox", durability=DurabilityConfig(target))
        assert store_state(recovered) == tail_states[index], f"tail boundary {index}"
        assert recovered.recovery.checkpoint_loaded
        assert recovered.recovery.records_replayed == index
        recovered.close()


def test_checkpoint_is_refused_while_a_transaction_is_active(tmp_path):
    from repro.exceptions import StorageError

    engine = build_engine(tmp_path / "dir")
    engine.query("BEGIN WORK;")
    engine.query("INSERT part VALUES {part_no: 'PX', cost: 1};")
    with pytest.raises(StorageError):
        engine.checkpoint()
    engine.query("ROLLBACK WORK;")
    engine.checkpoint()  # quiescent again
    engine.close()


# ------------------------------------------------------- rollback exclusion


def test_rolled_back_and_conflicted_transactions_never_reach_the_log(tmp_path):
    engine = build_engine(tmp_path / "dir")
    op_insert_p1(engine)
    records_before = engine.wal.records_written
    engine.query("BEGIN WORK;")
    engine.query("INSERT part VALUES {part_no: 'PR', cost: 1};")
    engine.query("ROLLBACK WORK;")
    assert engine.wal.records_written == records_before
    committed = store_state(engine)
    engine.close()
    reset_surrogate_counter()
    recovered = PrimaEngine("crashbox", durability=DurabilityConfig(tmp_path / "dir"))
    assert store_state(recovered) == committed
    assert all(
        atom.get("part_no") != "PR" for atom in recovered.scan("part")
    ), "rolled-back insert must not be replayed"
    recovered.close()


# --------------------------------------------------------- hypothesis sweep


RANDOM_OPS = st.lists(
    st.sampled_from(["insert", "modify", "delete", "session", "rollback"]),
    min_size=1,
    max_size=10,
)


def run_random_workload(engine: PrimaEngine, program: List[str]) -> List[Tuple[int, str]]:
    """Apply *program*; return (WAL size, state) after every committed step."""
    trace = [(engine.wal.bytes_written, store_state(engine))]
    for index, op in enumerate(program):
        part_no = f"R{index}"
        if op == "insert":
            engine.query(f"INSERT part VALUES {{part_no: '{part_no}', cost: {index}}};")
        elif op == "modify":
            engine.query(f"MODIFY part FROM part SET cost = {1000 + index} WHERE part.cost >= 0;")
        elif op == "delete":
            engine.query(f"DELETE FROM part WHERE part.cost >= 1000;")
        elif op == "session":
            engine.query("BEGIN WORK;")
            engine.query(f"INSERT part VALUES {{part_no: '{part_no}a', cost: {index}}};")
            engine.query(f"INSERT part VALUES {{part_no: '{part_no}b', cost: {index}}};")
            engine.query("COMMIT WORK;")
        else:  # rollback: must leave no trace in the log
            engine.query("BEGIN WORK;")
            engine.query(f"INSERT part VALUES {{part_no: '{part_no}x', cost: {index}}};")
            engine.query("ROLLBACK WORK;")
        trace.append((engine.wal.bytes_written, store_state(engine)))
    return trace


@pytest.mark.slow
@settings(max_examples=40, deadline=None)
@given(program=RANDOM_OPS, crash_fraction=st.floats(min_value=0.0, max_value=1.0))
def test_random_commit_crash_interleavings_recover_the_committed_prefix(
    tmp_path_factory, program, crash_fraction
):
    base = tmp_path_factory.mktemp("sweep")
    engine = build_engine(base / "ref")
    trace = run_random_workload(engine, program)
    engine.close()
    total = trace[-1][0]
    cut = int(round(crash_fraction * total))
    recovered = recover_truncated(base / "ref", base / "rec", cut)
    sizes = [size for size, _state in trace]
    states = [state for _size, state in trace]
    assert_committed_prefix(recovered, sizes, states, cut)
    recovered.close()


@pytest.mark.slow
def test_every_single_byte_cut_recovers_a_committed_prefix(tmp_path):
    """Exhaustive torn-write sweep: every byte offset of the reference WAL."""
    boundaries, states = reference_run(tmp_path / "ref")
    for cut in range(boundaries[-1] + 1):
        recovered = recover_truncated(tmp_path / "ref", tmp_path / "rec", cut)
        assert_committed_prefix(recovered, boundaries, states, cut)
        recovered.close()


# ------------------------------------------------------------ WAL mechanics


def test_read_wal_reports_torn_tail_telemetry(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log", fsync="off")
    wal.commit_events([{"e": "ai", "t": "part", "id": "p1", "v": {}}])
    wal.commit_events([{"e": "ad", "t": "part", "id": "p1"}])
    wal.close()
    data = (tmp_path / "wal.log").read_bytes()
    torn = tmp_path / "torn.log"
    torn.write_bytes(data[:-3])
    scan = read_wal(torn)
    assert len(scan.records) == 1
    assert scan.torn_tail
    assert scan.valid_bytes + scan.discarded_bytes == len(data) - 3


def test_fsync_policies_sync_accounting(tmp_path):
    always = WriteAheadLog(tmp_path / "a.log", fsync="always")
    batch = WriteAheadLog(tmp_path / "b.log", fsync="batch", group_commit=4)
    off = WriteAheadLog(tmp_path / "c.log", fsync="off")
    for index in range(8):
        record = [{"e": "ai", "t": "part", "id": f"p{index}", "v": {}}]
        always.commit_events(record)
        batch.commit_events(record)
        off.commit_events(record)
    assert always.syncs == 8
    assert batch.syncs == 2  # 8 records / group_commit=4
    assert off.syncs == 0
    # All three logs carry the same records regardless of policy.
    for wal in (always, batch, off):
        wal.close()
    assert (
        len(read_wal(tmp_path / "a.log").records)
        == len(read_wal(tmp_path / "b.log").records)
        == len(read_wal(tmp_path / "c.log").records)
        == 8
    )


# ---------------------------------------------------- review-found regressions


def test_recovered_log_with_torn_tail_accepts_new_commits_durably(tmp_path):
    """Recover → write → recover again: the torn tail must be physically
    truncated at the first recovery, or the new commits land behind invalid
    bytes and are silently lost by the second recovery."""
    boundaries, _states = reference_run(tmp_path / "ref")
    cut = boundaries[1] + 5  # torn inside the second commit record
    survivor = recover_truncated(tmp_path / "ref", tmp_path / "rec", cut)
    assert survivor.recovery.discarded_bytes > 0
    survivor.query("INSERT part VALUES {part_no: 'AFTER', cost: 7};")
    survivor.close()
    reset_surrogate_counter()
    second = PrimaEngine("crashbox", durability=DurabilityConfig(tmp_path / "rec"))
    assert second.recovery.discarded_bytes == 0
    part_nos = sorted(atom.get("part_no") for atom in second.scan("part"))
    assert "AFTER" in part_nos, "post-recovery commits must survive the next recovery"
    assert "P1" in part_nos
    second.close()


def test_crash_between_checkpoint_image_and_wal_truncate_is_recoverable(tmp_path):
    """The checkpoint protocol window: new image on disk, log not yet
    truncated.  Replaying the full log (DDL included) over the image must be
    idempotent, not fatal."""
    from repro.storage.recovery import write_checkpoint

    directory = tmp_path / "dir"
    engine = build_engine(directory)
    op_insert_p1(engine)
    op_insert_p2(engine)
    expected = store_state(engine)
    # Simulate the crash: image written, truncate never happened.
    write_checkpoint(engine, engine.durability)
    engine.close()
    reset_surrogate_counter()
    recovered = PrimaEngine("crashbox", durability=DurabilityConfig(directory))
    assert store_state(recovered) == expected
    assert recovered.recovery.checkpoint_loaded
    # The full log replayed over the image: both DDL and commits, idempotent.
    assert recovered.recovery.ddl_replayed == 3
    recovered.close()


def test_checkpoint_on_a_closed_engine_fails_before_touching_the_image(tmp_path):
    from repro.exceptions import StorageError

    directory = tmp_path / "dir"
    engine = build_engine(directory)
    op_insert_p1(engine)
    engine.checkpoint()
    image_before = (directory / "checkpoint.json").read_bytes()
    op_insert_p2(engine)
    engine.close()
    with pytest.raises(StorageError):
        engine.checkpoint()
    assert (directory / "checkpoint.json").read_bytes() == image_before


def test_value_encoding_sentinel_keys_round_trip(tmp_path):
    """A user dict that uses the encoder's sentinel keys must survive the
    WAL unchanged (escaped, not re-interpreted as a tuple)."""
    from repro.storage.wal import decode_value, encode_value

    tricky = {
        "__tuple__": [1, 2],
        "__dict__": {"nested": (3, 4)},
        "plain": [(5, 6), {"__tuple__": "x"}],
    }
    assert decode_value(encode_value(tricky)) == tricky
    assert decode_value(encode_value((1, "a", (2.5,)))) == (1, "a", (2.5,))
    # End to end: an ANY-typed attribute carrying a sentinel-shaped dict.
    reset_surrogate_counter()
    engine = PrimaEngine(
        "anybox", durability=DurabilityConfig(tmp_path / "dir", fsync=FSYNC_ALWAYS)
    )
    engine.create_atom_type("blob", {"payload": "any"})
    engine.store_atom("blob", identifier="b1", payload={"__tuple__": [9]})
    engine.store_atom("blob", identifier="b2", payload=(1, 2))
    engine.close()
    recovered = PrimaEngine("anybox", durability=DurabilityConfig(tmp_path / "dir"))
    assert recovered.get_atom("blob", "b1").get("payload") == {"__tuple__": [9]}
    assert recovered.get_atom("blob", "b2").get("payload") == (1, 2)
    recovered.close()


class FlakyWAL(WriteAheadLog):
    """A WAL double whose next append fails mid-write — but the process
    survives, so the default rewind cleans the partial bytes up."""

    fail_next = False

    def _write_bytes(self, blob: bytes) -> None:
        if FlakyWAL.fail_next:
            FlakyWAL.fail_next = False
            super()._write_bytes(blob[: len(blob) // 2])
            raise OSError("disk hiccup mid-append")
        super()._write_bytes(blob)


def test_sync_fsyncs_under_every_policy(tmp_path):
    """`sync()` promises an fsync regardless of policy — including 'off'."""
    wal = WriteAheadLog(tmp_path / "wal.log", fsync="off")
    wal.commit_events([{"e": "ai", "t": "part", "id": "p1", "v": {}}])
    assert wal.syncs == 0
    wal.sync()
    assert wal.syncs == 1
    wal.close()


def test_any_typed_values_round_trip_or_fail_loudly():
    from repro.storage.wal import WalError, decode_value, encode_value

    for value in (
        {1, 2, 3},
        frozenset({("a", 1), ("b", 2)}),
        b"\x00\xff raw bytes",
        {1: "a", (2, 3): "b"},
        {"mixed": [{4, 5}, b"x", {6: (7,)}]},
    ):
        assert decode_value(encode_value(value)) == value, value
    with pytest.raises(WalError):
        encode_value(object())


def test_failed_commit_append_is_retryable_and_logs_once(tmp_path):
    """A surviving process whose WAL append fails mid-commit keeps the
    session open (buffer intact) and a retried COMMIT WORK logs the
    transaction exactly once, with no torn bytes left behind."""
    reset_surrogate_counter()
    config = DurabilityConfig(
        tmp_path / "dir", fsync=FSYNC_ALWAYS, wal_factory=FlakyWAL
    )
    engine = PrimaEngine("crashbox", durability=config)
    engine.create_atom_type("part", {"part_no": "string", "cost": "integer"})
    engine.query("BEGIN WORK;")
    engine.query("INSERT part VALUES {part_no: 'RETRY', cost: 1};")
    FlakyWAL.fail_next = True
    with pytest.raises(OSError):
        engine.query("COMMIT WORK;")
    assert engine.interpreter().in_transaction, "session must stay open for a retry"
    engine.query("COMMIT WORK;")  # retry succeeds and flushes the kept buffer
    committed = store_state(engine)
    engine.close()
    reset_surrogate_counter()
    recovered = PrimaEngine("crashbox", durability=DurabilityConfig(tmp_path / "dir"))
    assert recovered.recovery.discarded_bytes == 0, "failed append must be rewound"
    assert store_state(recovered) == committed
    assert [a.get("part_no") for a in recovered.scan("part")] == ["RETRY"]
    recovered.close()


def test_failed_commit_append_rolls_back_an_autocommitted_statement(tmp_path):
    """Outside a session, a commit-time WAL failure must not leave applied
    but undurable state: the auto-committed DML statement rolls back."""
    reset_surrogate_counter()
    config = DurabilityConfig(
        tmp_path / "dir", fsync=FSYNC_ALWAYS, wal_factory=FlakyWAL
    )
    engine = PrimaEngine("crashbox", durability=config)
    engine.create_atom_type("part", {"part_no": "string", "cost": "integer"})
    engine.query("INSERT part VALUES {part_no: 'OK', cost: 1};")
    FlakyWAL.fail_next = True
    with pytest.raises(OSError):
        engine.query("INSERT part VALUES {part_no: 'LOST', cost: 2};")
    assert [a.get("part_no") for a in engine.scan("part")] == ["OK"]
    committed = store_state(engine)
    engine.close()
    reset_surrogate_counter()
    recovered = PrimaEngine("crashbox", durability=DurabilityConfig(tmp_path / "dir"))
    assert store_state(recovered) == committed
    recovered.close()


# ----------------------------------------- persisted structure-index encodings

RECURSIVE_BOM = "SELECT ALL FROM RECURSIVE part [composition] DOWN;"

BOM_EDGES = [
    ("p0", "p1"),
    ("p0", "p2"),
    ("p1", "p3"),
    ("p2", "p4"),
    ("p3", "p5"),
    ("p5", "p6"),
]


def build_bom_engine(directory) -> PrimaEngine:
    """A small BOM engine with a registered structure index."""
    reset_surrogate_counter()
    config = DurabilityConfig(directory, fsync=FSYNC_ALWAYS)
    engine = PrimaEngine("bombox", durability=config)
    engine.create_atom_type("part", {"part_no": "string", "cost": "integer"})
    engine.create_link_type("composition", "part", "part")
    for i in range(8):
        engine.store_atom("part", identifier=f"p{i}", part_no=f"P{i}", cost=i)
    for parent, child in BOM_EDGES:
        engine.connect("composition", parent, child)
    engine.create_structure_index("part", "composition", "down")
    return engine


def canonical_closures(engine: PrimaEngine):
    """Order-independent form of the recursive BOM result."""
    entries = []
    for molecule in engine.query(RECURSIVE_BOM).molecules:
        names = {atom.identifier: atom.get("part_no") for atom in molecule.atoms}
        entries.append(
            (
                names[molecule.root_atom.identifier],
                frozenset(names.values()),
                tuple(
                    sorted(
                        (names[identifier], level)
                        for identifier, level in molecule.levels.items()
                    )
                ),
            )
        )
    return sorted(entries)


def test_checkpoint_persists_structure_encodings(tmp_path):
    """A built interval encoding travels with the checkpoint image: the
    reopened engine answers recursive queries without a single rebuild."""
    engine = build_bom_engine(tmp_path / "dir")
    before = canonical_closures(engine)  # builds the encoding
    assert engine.maintenance_report()["structure_builds"] == 1
    engine.checkpoint()
    engine.close()

    reset_surrogate_counter()
    reopened = PrimaEngine("bombox", durability=DurabilityConfig(tmp_path / "dir"))
    assert canonical_closures(reopened) == before
    report = reopened.maintenance_report()
    assert report["structure_indexes"] == 1
    assert report["structure_builds"] == 0, "restored encoding must not be rebuilt"
    reopened.close()


def test_restored_encodings_stay_coherent_across_the_wal_tail(tmp_path):
    """Commits after the checkpoint are folded into the restored encoding
    during replay, exactly as live writes are folded into the built one."""
    engine = build_bom_engine(tmp_path / "dir")
    canonical_closures(engine)  # build + make durable
    engine.checkpoint()
    engine.store_atom("part", identifier="p9", part_no="P9", cost=9)
    engine.connect("composition", "p6", "p9")  # leaf graft: in-place fold
    before = canonical_closures(engine)
    engine.close()

    reset_surrogate_counter()
    reopened = PrimaEngine("bombox", durability=DurabilityConfig(tmp_path / "dir"))
    assert canonical_closures(reopened) == before
    assert reopened.maintenance_report()["structure_builds"] == 0
    reopened.close()


def test_checkpoint_image_without_encodings_rebuilds_lazily(tmp_path):
    """Older images (no ``structure_encodings`` key) keep the pre-existing
    behaviour: registration survives, the encoding rebuilds on first use."""
    engine = build_bom_engine(tmp_path / "dir")
    before = canonical_closures(engine)
    engine.checkpoint()
    engine.close()

    path = DurabilityConfig(tmp_path / "dir").checkpoint_path
    image = json.loads(path.read_text(encoding="utf-8"))
    image.pop("structure_encodings", None)
    path.write_text(json.dumps(image, separators=(",", ":")), encoding="utf-8")

    reset_surrogate_counter()
    reopened = PrimaEngine("bombox", durability=DurabilityConfig(tmp_path / "dir"))
    assert canonical_closures(reopened) == before
    assert reopened.maintenance_report()["structure_builds"] == 1
    reopened.close()
