"""Unit tests for the relational baseline: relations, algebra, mapping, join assembly."""

import pytest

from repro.core.molecule import MoleculeTypeDescription
from repro.exceptions import AlgebraError, DuplicateNameError, SchemaError, UnionCompatibilityError
from repro.relational import (
    Relation,
    RelationSchema,
    RelationalAlgebra,
    assemble_complex_objects,
    cartesian_product,
    difference,
    equijoin,
    map_database,
    natural_join,
    project,
    rename,
    select,
    union,
)
from repro.relational.algebra import WorkCounter, intersection
from repro.relational.mapping import concept_comparison_rows
from repro.relational.query import JoinPlan, relational_transitive_closure


@pytest.fixture()
def books():
    return Relation(
        "book",
        RelationSchema(("_id", "title", "year"), primary_key=("_id",)),
        [
            {"_id": "b1", "title": "Relational Model", "year": 1970},
            {"_id": "b2", "title": "Principles", "year": 1980},
            {"_id": "b3", "title": "Survey", "year": 1985},
        ],
    )


@pytest.fixture()
def authors():
    return Relation(
        "author",
        ("_id", "name"),
        [{"_id": "a1", "name": "Codd"}, {"_id": "a2", "name": "Ullman"}],
    )


@pytest.fixture()
def wrote():
    return Relation(
        "wrote",
        ("author_id", "book_id"),
        [
            {"author_id": "a1", "book_id": "b1"},
            {"author_id": "a2", "book_id": "b2"},
            {"author_id": "a1", "book_id": "b3"},
            {"author_id": "a2", "book_id": "b3"},
        ],
    )


class TestRelation:
    def test_schema_validation(self):
        with pytest.raises(SchemaError):
            RelationSchema(("a", "a"))
        with pytest.raises(SchemaError):
            RelationSchema(("a",), primary_key=("b",))

    def test_set_semantics(self, books):
        assert len(books) == 3
        added = books.insert({"_id": "b1", "title": "Relational Model", "year": 1970})
        assert not added and len(books) == 3

    def test_insert_unknown_attribute_rejected(self, books):
        with pytest.raises(AlgebraError):
            books.insert({"_id": "b4", "isbn": "123"})

    def test_contains_and_values(self, books):
        assert {"_id": "b1", "title": "Relational Model", "year": 1970} in books
        assert set(books.values_of("year")) == {1970, 1980, 1985}

    def test_delete(self, books):
        removed = books.delete(lambda row: row["year"] < 1980)
        assert removed == 1 and len(books) == 2

    def test_index_lookup(self, books):
        books.build_index("year")
        assert len(books.lookup("year", 1980)) == 1
        assert books.lookup("year", 2000) == ()
        with pytest.raises(AlgebraError):
            books.build_index("missing")

    def test_lookup_without_index_scans(self, books):
        assert len(books.lookup("title", "Survey")) == 1

    def test_equality_order_insensitive(self, books):
        other = Relation("b2", books.schema, reversed(books.rows))
        assert books == other


class TestRelationalAlgebra:
    def test_select(self, books):
        recent = select(books, lambda row: row["year"] >= 1980)
        assert len(recent) == 2

    def test_project_removes_duplicates(self, authors):
        authors.insert({"_id": "a3", "name": "Codd"})
        names = project(authors, ["name"])
        assert len(names) == 2

    def test_project_unknown_attribute(self, books):
        with pytest.raises(AlgebraError):
            project(books, ["isbn"])

    def test_rename(self, books):
        renamed = rename(books, {"year": "published"})
        assert "published" in renamed.schema.attributes
        assert "year" not in renamed.schema.attributes

    def test_cartesian_product(self, authors, books):
        result = cartesian_product(authors, books)
        assert len(result) == 6
        # _id clashes are prefixed.
        assert any("." in attribute for attribute in result.schema.attributes)

    def test_union_and_difference(self, books):
        early = select(books, lambda row: row["year"] < 1980, name="early")
        late = select(books, lambda row: row["year"] >= 1980, name="late")
        assert len(union(early, late)) == 3
        assert len(difference(books, early)) == 2
        assert len(intersection(books, early)) == 1

    def test_union_incompatible(self, books, authors):
        with pytest.raises(UnionCompatibilityError):
            union(books, authors)

    def test_equijoin(self, authors, wrote):
        result = equijoin(authors, wrote, "_id", "author_id")
        assert len(result) == 4
        assert all("book_id" in row for row in result)

    def test_equijoin_unknown_attributes(self, authors, wrote):
        with pytest.raises(AlgebraError):
            equijoin(authors, wrote, "missing", "author_id")
        with pytest.raises(AlgebraError):
            equijoin(authors, wrote, "_id", "missing")

    def test_natural_join(self, wrote, books):
        renamed = rename(books, {"_id": "book_id"})
        result = natural_join(wrote, renamed)
        assert len(result) == 4
        assert all("title" in row for row in result)

    def test_natural_join_without_shared_attributes_is_product(self, authors):
        other = Relation("r", ("x",), [{"x": 1}, {"x": 2}])
        assert len(natural_join(authors, other)) == 4

    def test_work_counter(self, authors, wrote):
        algebra = RelationalAlgebra()
        algebra.equijoin(authors, wrote, "_id", "author_id")
        algebra.select(authors, lambda row: True)
        assert algebra.counter.operations == 2
        assert algebra.counter.tuples_produced == 4 + 2


class TestMapping:
    def test_entity_and_auxiliary_relations(self, tiny_db):
        mapping = map_database(tiny_db)
        assert set(mapping.entity_relations) == {"author", "book"}
        assert set(mapping.auxiliary_relations) == {"wrote"}
        assert len(mapping.relation("author")) == 2
        assert len(mapping.relation("wrote")) == 4

    def test_total_tuples_exceeds_atom_count(self, tiny_db):
        mapping = map_database(tiny_db)
        assert mapping.total_tuples() == tiny_db.atom_count() + tiny_db.link_count()

    def test_junction_columns_named_after_types(self, tiny_db):
        mapping = map_database(tiny_db)
        assert mapping.relation("wrote").schema.attributes == ("author_id", "book_id")

    def test_reflexive_junction_columns(self):
        from repro.datasets.bill_of_materials import build_bill_of_materials

        mapping = map_database(build_bill_of_materials(depth=2, fan_out=2))
        columns = mapping.relation("composition").schema.attributes
        assert columns == ("part_super_id", "part_sub_id")

    def test_concept_rows_cover_figure(self):
        rows = concept_comparison_rows()
        assert ("tuple", "atom") in rows
        assert ("relation", "atom type") in rows
        assert ("-", "link type") in rows
        assert len(rows) == 13


class TestJoinAssembly:
    def test_plan_from_description(self, mt_state_desc):
        plan = JoinPlan.from_description(mt_state_desc)
        assert plan.root == "state"
        assert len(plan.steps) == 3
        assert plan.join_count() == 6

    def test_assembles_one_object_per_root(self, geo_db, mt_state_desc):
        mapping = map_database(geo_db)
        result = assemble_complex_objects(mapping, mt_state_desc)
        assert len(result.objects) == 10
        assert result.intermediate_tuples() > 0

    def test_objects_match_molecules(self, geo_db, mt_state_desc):
        from repro.core import molecule_type_definition

        mapping = map_database(geo_db)
        result = assemble_complex_objects(mapping, mt_state_desc)
        molecule_type = molecule_type_definition(geo_db, "mt_state", mt_state_desc)
        by_root = {m.root_atom.identifier: m for m in molecule_type}
        for nested in result.objects:
            molecule = by_root[nested["_id"]]
            # Same number of edge atoms collected by both strategies.
            edges_relational = {
                edge["_id"] for area in nested.get("area", []) for edge in area.get("edge", [])
            }
            edges_mad = {a.identifier for a in molecule.atoms_of_type("edge")}
            assert edges_relational == edges_mad

    def test_root_predicate(self, geo_db, mt_state_desc):
        mapping = map_database(geo_db)
        result = assemble_complex_objects(
            mapping, mt_state_desc, root_predicate=lambda row: row["hectare"] > 800
        )
        assert len(result.objects) == 4

    def test_transitive_closure(self):
        from repro.datasets.bill_of_materials import build_bill_of_materials, root_parts

        bom = build_bill_of_materials(depth=3, fan_out=2)
        mapping = map_database(bom)
        root = root_parts(bom)[0]
        closures = relational_transitive_closure(mapping, "composition", [root.identifier])
        assert len(closures[root.identifier]) == 14
