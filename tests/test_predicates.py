"""Unit tests for qualification formulas and the qual predicate (Definitions 4 and 10)."""

import pytest

from repro.core.atom import Atom
from repro.core.molecule import Molecule
from repro.core.predicates import (
    And,
    AttributeRef,
    Comparison,
    FalseFormula,
    Not,
    Or,
    PredicateFormula,
    TrueFormula,
    attr,
    conjoin,
    split_conjunction,
)
from repro.exceptions import RestrictionError


@pytest.fixture()
def sp():
    return Atom("state", {"name": "Sao Paulo", "code": "SP", "hectare": 750}, identifier="SP")


@pytest.fixture()
def molecule(sp):
    edge = Atom("edge", {"edge_id": "e1", "length": 12.0}, identifier="e1")
    point = Atom("point", {"name": "pn"}, identifier="p1")
    return Molecule(sp, [sp, edge, point], [])


class TestComparisons:
    def test_attr_builder_operators(self, sp):
        assert (attr("hectare") > 700).evaluate_atom(sp)
        assert (attr("hectare") >= 750).evaluate_atom(sp)
        assert not (attr("hectare") < 700).evaluate_atom(sp)
        assert (attr("hectare") <= 750).evaluate_atom(sp)
        assert (attr("code") == "SP").evaluate_atom(sp)
        assert (attr("code") != "MG").evaluate_atom(sp)

    def test_dotted_shorthand(self, sp):
        formula = attr("state.code") == "SP"
        assert formula.lhs.atom_type == "state"
        assert formula.evaluate_atom(sp)

    def test_type_qualified_mismatch_returns_false(self, sp):
        formula = attr("code", "river") == "SP"
        assert not formula.evaluate_atom(sp)

    def test_none_comparisons(self, sp):
        assert not (attr("missing") > 1).evaluate_atom(sp)
        assert (attr("missing") != 1).evaluate_atom(sp)
        assert not (attr("missing") == 1).evaluate_atom(sp)

    def test_incomparable_types_return_false(self, sp):
        assert not (attr("name") > 5).evaluate_atom(sp)

    def test_attribute_to_attribute_comparison(self, sp):
        formula = Comparison(AttributeRef("hectare"), ">", AttributeRef("hectare"))
        assert not formula.evaluate_atom(sp)
        formula = Comparison(AttributeRef("hectare"), ">=", AttributeRef("hectare"))
        assert formula.evaluate_atom(sp)

    def test_unknown_operator_rejected(self):
        with pytest.raises(RestrictionError):
            Comparison(AttributeRef("x"), "~", 1)

    def test_referenced_attributes(self):
        formula = attr("name", "point") == "pn"
        assert formula.referenced_attributes() == (("point", "name"),)
        assert formula.referenced_atom_types() == ("point",)


class TestBooleanConnectives:
    def test_and_or_not(self, sp):
        high = attr("hectare") > 700
        wrong_code = attr("code") == "MG"
        assert (high & ~wrong_code).evaluate_atom(sp)
        assert (high | wrong_code).evaluate_atom(sp)
        assert not (high & wrong_code).evaluate_atom(sp)

    def test_and_requires_two_operands(self):
        with pytest.raises(RestrictionError):
            And(TrueFormula())
        with pytest.raises(RestrictionError):
            Or(TrueFormula())

    def test_true_false_constants(self, sp, molecule):
        assert TrueFormula().evaluate_atom(sp)
        assert TrueFormula().evaluate_molecule(molecule)
        assert not FalseFormula().evaluate_atom(sp)
        assert not FalseFormula().evaluate_molecule(molecule)

    def test_referenced_attributes_aggregate(self):
        formula = (attr("a", "t1") == 1) & (attr("b", "t2") == 2)
        assert set(formula.referenced_atom_types()) == {"t1", "t2"}

    def test_not_wraps(self, sp):
        assert Not(FalseFormula()).evaluate_atom(sp)
        assert Not(attr("code") == "SP").evaluate_atom(sp) is False


class TestMoleculeEvaluation:
    def test_existential_semantics_over_components(self, molecule):
        assert (attr("name", "point") == "pn").evaluate_molecule(molecule)
        assert not (attr("name", "point") == "other").evaluate_molecule(molecule)

    def test_unqualified_reference_sees_all_atoms(self, molecule):
        assert (attr("length") > 10).evaluate_molecule(molecule)

    def test_attribute_to_attribute_over_molecule(self, molecule):
        formula = Comparison(AttributeRef("hectare", "state"), ">", AttributeRef("length", "edge"))
        assert formula.evaluate_molecule(molecule)


class TestHelpers:
    def test_predicate_formula_wraps_callable(self, sp, molecule):
        formula = PredicateFormula(lambda item: True, "<always>")
        assert formula.evaluate_atom(sp)
        assert formula.evaluate_molecule(molecule)
        assert formula.referenced_attributes() == ()
        assert repr(formula) == "<always>"

    def test_conjoin_empty_and_single(self):
        assert isinstance(conjoin([]), TrueFormula)
        single = attr("x") == 1
        assert conjoin([single]) is single
        assert isinstance(conjoin([single, attr("y") == 2]), And)

    def test_conjoin_drops_true(self):
        single = attr("x") == 1
        assert conjoin([TrueFormula(), single]) is single

    def test_split_conjunction_flattens(self):
        a, b, c = attr("a") == 1, attr("b") == 2, attr("c") == 3
        parts = split_conjunction(And(And(a, b), c))
        assert len(parts) == 3
        assert split_conjunction(TrueFormula()) == ()
        assert split_conjunction(a) == (a,)

    def test_repr_round_trip_style(self):
        formula = (attr("hectare", "state") > 800) & ~(attr("code", "state") == "SP")
        text = repr(formula)
        assert "state.hectare" in text and "AND" in text and "NOT" in text
