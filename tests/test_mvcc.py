"""MVCC: version chains, snapshot-pinned readers, and interleaved transactions.

Covers the concurrency layer end to end: copy-on-write version chains and
their garbage collection, `PrimaEngine.snapshot_at` repeatable reads,
first-committer-wins conflict detection between interleaved transactions
(including a hypothesis sweep over random interleavings), the MQL
``BEGIN WORK`` / ``COMMIT WORK`` / ``ROLLBACK WORK`` session scope, and the
EXPLAIN coverage for INSERT and MODIFY.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.database import Database
from repro.core.versions import ABSENT, Snapshot, VersionChain
from repro.datasets.geography import build_geography
from repro.exceptions import (
    StorageError,
    TransactionConflictError,
    TransactionError,
)
from repro.manipulation.transactions import Transaction
from repro.mql.interpreter import MQLInterpreter
from repro.storage.engine import PrimaEngine


def small_engine(n_states: int = 6) -> PrimaEngine:
    database = build_geography(n_states=n_states, edges_per_state=3, n_rivers=2)
    engine = PrimaEngine.from_database(database)
    engine.query("SELECT ALL FROM state-area WHERE state.code = 'S1';")  # warm caches
    return engine


def versioned_db() -> Database:
    db = Database("mvcc")
    db.define_atom_type("state", {"name": "string", "hectare": "integer"})
    db.define_atom_type("area", {"area_id": "string"})
    db.define_link_type("state-area", "state", "area")
    db.insert_atom("state", identifier="s1", name="alpha", hectare=100)
    db.insert_atom("area", identifier="a1", area_id="a1")
    db.connect("state-area", "s1", "a1")
    db.enable_versioning()
    return db


def fingerprint(result) -> str:
    import json

    return json.dumps(
        sorted(json.dumps(d, sort_keys=True, default=str) for d in result.to_dicts())
    )


# ----------------------------------------------------------- version chains


class TestVersionChain:
    def test_base_entry_resolves_for_old_snapshots(self):
        chain = VersionChain("v0")
        chain.record(5, "v1")
        chain.record(9, "v2")
        assert chain.at(Snapshot(0)) == "v0"
        assert chain.at(Snapshot(5)) == "v1"
        assert chain.at(Snapshot(8)) == "v1"
        assert chain.at(Snapshot(9)) == "v2"

    def test_own_generations_are_visible(self):
        chain = VersionChain("v0")
        chain.record(7, "mine")
        snapshot = Snapshot(3, own={7})
        assert chain.at(snapshot) == "mine"
        assert chain.at(Snapshot(3)) == "v0"

    def test_truncate_keeps_newest_reachable_entry(self):
        chain = VersionChain("v0")
        chain.record(5, "v1")
        chain.record(9, "v2")
        dropped = chain.truncate(6)
        assert dropped == 1  # the base entry: v1 serves every pin >= 6
        assert chain.at(Snapshot(6)) == "v1"
        assert chain.at(Snapshot(9)) == "v2"

    def test_cannot_pin_future_generation(self):
        db = versioned_db()
        with pytest.raises(StorageError):
            db.pin(db.versioning.generation + 10)


# ------------------------------------------------------- snapshot handles


class TestSnapshotReaders:
    def test_pinned_reader_is_stable_across_committed_dml(self):
        engine = small_engine()
        query = "SELECT ALL FROM state-area WHERE state.hectare > 0;"
        handle = engine.snapshot_at()
        before = fingerprint(handle.query(query))
        engine.query(
            "INSERT state - area VALUES {name: 'nw', code: 'NW', hectare: 700, "
            "area: {area_id: 'a_nw', kind: 'state-border'}};"
        )
        engine.query("MODIFY state FROM state - area SET hectare = 1 WHERE state.code = 'S1';")
        engine.query("DELETE FROM state - area WHERE state.code = 'S2';")
        assert fingerprint(handle.query(query)) == before
        # A fresh (head) read observes every committed write.
        head = fingerprint(engine.query(query))
        assert head != before
        handle.release()

    def test_release_is_idempotent_and_blocks_queries(self):
        engine = small_engine()
        handle = engine.snapshot_at()
        handle.release()
        handle.release()
        with pytest.raises(StorageError):
            handle.query("SELECT ALL FROM state-area;")

    def test_snapshot_handles_are_read_only(self):
        engine = small_engine()
        with engine.snapshot_at() as handle:
            with pytest.raises(StorageError):
                handle.query("DELETE FROM state - area WHERE state.code = 'S1';")
            with pytest.raises(StorageError):
                handle.query("BEGIN WORK;")
        # The rejected statements really did nothing at the head.
        assert len(engine.query("SELECT ALL FROM state-area WHERE state.code = 'S1';")) == 1

    def test_context_manager_releases_and_gc_truncates(self):
        engine = small_engine()
        with engine.snapshot_at() as handle:
            engine.query(
                "MODIFY state FROM state - area SET hectare = 42 WHERE state.code = 'S1';"
            )
            report = engine.maintenance_report()
            assert report["versions_live"] > 0
            assert report["pins_active"] == 1
            assert report["oldest_pinned_generation"] == handle.generation
        report = engine.maintenance_report()
        assert report["versions_live"] == 0
        assert report["versions_collected"] > 0
        assert report["oldest_pinned_generation"] is None
        assert report["pins_active"] == 0

    def test_unpinned_writes_record_no_history(self):
        engine = small_engine()
        engine.query("MODIFY state FROM state - area SET hectare = 7 WHERE state.code = 'S1';")
        report = engine.maintenance_report()
        assert report["versions_live"] == 0

    def test_two_pins_gc_to_the_older_horizon(self):
        engine = small_engine()
        old = engine.snapshot_at()
        engine.query("MODIFY state FROM state - area SET hectare = 11 WHERE state.code = 'S1';")
        newer = engine.snapshot_at()
        engine.query("MODIFY state FROM state - area SET hectare = 12 WHERE state.code = 'S1';")
        newer.release()  # GC runs, but the old pin keeps its chain alive
        report = engine.maintenance_report()
        assert report["versions_live"] > 0
        assert report["oldest_pinned_generation"] == old.generation
        old_value = next(iter(old.query(
            "SELECT ALL FROM state-area WHERE state.code = 'S1';"
        ))).root_atom["hectare"]
        assert old_value not in (11, 12)
        old.release()
        assert engine.maintenance_report()["versions_live"] == 0

    def test_maintenance_report_extends_statistics(self):
        engine = small_engine()
        report = engine.maintenance_report()
        statistics = engine.maintenance_statistics()
        for key, value in statistics.items():
            assert report[key] == value
        for key in (
            "versions_live",
            "versions_collected",
            "oldest_pinned_generation",
            "pins_active",
            "network_generation",
        ):
            assert key in report
        assert report["network_generation"] == report["generation"]
        assert report["index_generation"] == report["generation"]


# ------------------------------------------------- interleaved transactions


class TestWriterWriterConflicts:
    def test_second_writer_conflicts_with_active_first(self):
        db = versioned_db()
        t1 = Transaction(db)
        t2 = Transaction(db)
        t1.begin()
        t2.begin()
        t1.modify_atom("state", "s1", hectare=111)
        with pytest.raises(TransactionConflictError):
            t2.modify_atom("state", "s1", hectare=222)
        t1.commit()
        t2.rollback()
        assert db.atyp("state").get("s1")["hectare"] == 111

    def test_late_writer_conflicts_with_earlier_commit(self):
        db = versioned_db()
        t2 = Transaction(db)
        t2.begin()  # starts before t1 commits
        t1 = Transaction(db)
        t1.begin()
        t1.modify_atom("state", "s1", hectare=111)
        t1.commit()
        with pytest.raises(TransactionConflictError):
            t2.modify_atom("state", "s1", hectare=222)
        t2.rollback()
        assert db.atyp("state").get("s1")["hectare"] == 111

    def test_commit_log_revalidation_first_committer_wins(self):
        db = versioned_db()
        state = db.versioning
        t2 = Transaction(db)
        t2.begin()
        t2.modify_atom("state", "s1", hectare=222)
        # Simulate a racing commit the eager write check could not have seen.
        state.tick()
        state.record_commit({("atom", "state", "s1")})
        with pytest.raises(TransactionConflictError):
            t2.commit()
        assert not t2.is_active
        assert db.atyp("state").get("s1")["hectare"] == 100  # rolled back

    def test_disjoint_write_sets_both_commit(self):
        db = versioned_db()
        db.insert_atom("state", identifier="s2", name="beta", hectare=200)
        t1 = Transaction(db)
        t2 = Transaction(db)
        t1.begin()
        t2.begin()
        t1.modify_atom("state", "s1", hectare=111)
        t2.modify_atom("state", "s2", hectare=222)
        t1.commit()
        t2.commit()
        assert db.atyp("state").get("s1")["hectare"] == 111
        assert db.atyp("state").get("s2")["hectare"] == 222

    def test_delete_conflicts_with_concurrent_link_writer(self):
        db = versioned_db()
        db.insert_atom("area", identifier="a2", area_id="a2")
        t1 = Transaction(db)
        t2 = Transaction(db)
        t1.begin()
        t2.begin()
        t1.connect("state-area", "s1", "a2")
        with pytest.raises(TransactionConflictError):
            t2.delete_atom("state", "s1")  # would remove the link t1 created
        t1.commit()
        t2.rollback()
        assert db.ltyp("state-area").partners_of("s1") == frozenset({"a1", "a2"})

    @settings(max_examples=60, deadline=None)
    @given(schedule=st.lists(st.booleans(), min_size=0, max_size=8))
    def test_random_interleavings_exactly_one_winner(self, schedule):
        """Two transactions modify the same atom under a random interleaving:
        when they overlap, exactly one commits and the loser leaves no partial
        state; when one finishes before the other begins, both commit (they
        were never concurrent) and the later value is final."""
        db = versioned_db()
        transactions = [Transaction(db), Transaction(db)]
        values = [111, 222]
        steps = {0: ["begin", "modify", "commit"], 1: ["begin", "modify", "commit"]}
        outcome = [None, None]  # "committed" | "conflict"
        begin_step = [None, None]
        finish_step = [None, None]
        commit_order = []
        clock = [0]
        order = list(schedule) + [True] * 6 + [False] * 6  # always drains both

        def advance(which: int) -> None:
            if outcome[which] is not None or not steps[which]:
                return
            action = steps[which].pop(0)
            txn = transactions[which]
            clock[0] += 1
            try:
                if action == "begin":
                    txn.begin()
                    begin_step[which] = clock[0]
                elif action == "modify":
                    txn.modify_atom("state", "s1", hectare=values[which])
                else:
                    txn.commit()
                    outcome[which] = "committed"
                    finish_step[which] = clock[0]
                    commit_order.append(which)
            except TransactionConflictError:
                if txn.is_active:
                    txn.rollback()
                outcome[which] = "conflict"
                finish_step[which] = clock[0]

        for pick_first in order:
            advance(0 if pick_first else 1)
        concurrent = (
            begin_step[0] < finish_step[1] and begin_step[1] < finish_step[0]
        )
        if concurrent:
            # Overlapping writers: first committer wins, the other aborts.
            assert sorted(outcome) == ["committed", "conflict"]
        else:
            # Serial execution: no conflict to detect, both publish in order.
            assert outcome == ["committed", "committed"]
        assert commit_order, "at least one transaction must commit"
        assert db.atyp("state").get("s1")["hectare"] == values[commit_order[-1]]
        # No partial state: the database still holds exactly the seeded atoms.
        assert len(db.atyp("state")) == 1
        assert len(db.ltyp("state-area")) == 1
        assert not db.versioning.active_transactions


# ------------------------------------------------------------ MQL sessions


class TestMQLTransactions:
    def test_begin_work_pins_repeatable_reads(self):
        engine = small_engine()
        query = "SELECT ALL FROM state-area WHERE state.hectare > 0;"
        engine.query("BEGIN WORK;")
        before = fingerprint(engine.query(query))
        # A concurrent writer through the atom interface commits to the head.
        engine.store_atom("state", name="ghost", code="GH", hectare=999)
        assert fingerprint(engine.query(query)) == before
        engine.query("COMMIT WORK;")
        assert fingerprint(engine.query(query)) != before

    def test_session_sees_its_own_writes(self):
        engine = small_engine()
        engine.query("BEGIN WORK;")
        engine.query(
            "INSERT state - area VALUES {name: 'tx', code: 'TX', hectare: 550, "
            "area: {area_id: 'a_tx', kind: 'state-border'}};"
        )
        inside = engine.query("SELECT ALL FROM state-area WHERE state.code = 'TX';")
        assert len(inside) == 1
        engine.query("ROLLBACK WORK;")
        assert len(engine.query("SELECT ALL FROM state-area WHERE state.code = 'TX';")) == 0

    def test_commit_work_publishes(self):
        engine = small_engine()
        engine.query("BEGIN WORK;")
        engine.query(
            "INSERT state - area VALUES {name: 'tx', code: 'TX', hectare: 550, "
            "area: {area_id: 'a_tx', kind: 'state-border'}};"
        )
        engine.query("COMMIT WORK;")
        assert len(engine.query("SELECT ALL FROM state-area WHERE state.code = 'TX';")) == 1

    def test_failed_statement_rolls_back_to_savepoint_only(self):
        engine = small_engine()
        engine.query("BEGIN WORK;")
        engine.query(
            "INSERT state - area VALUES {name: 'ok', code: 'OK', hectare: 500, "
            "area: {area_id: 'a_ok', kind: 'state-border'}};"
        )
        with pytest.raises(Exception):
            engine.query(
                "INSERT state - area VALUES {name: 'bad', nonsense: 1, "
                "area: {area_id: 'a_bad', kind: 'k'}};"
            )
        # The failed statement is undone, the session (and its first insert) live on.
        assert len(engine.query("SELECT ALL FROM state-area WHERE state.code = 'OK';")) == 1
        engine.query("COMMIT WORK;")
        assert len(engine.query("SELECT ALL FROM state-area WHERE state.code = 'OK';")) == 1
        assert len(engine.query("SELECT ALL FROM state-area WHERE state.name = 'bad';")) == 0

    def test_conflicting_sessions_first_committer_wins(self):
        engine = small_engine()
        snapshot = engine.to_database()
        first = MQLInterpreter(snapshot)
        second = MQLInterpreter(snapshot)
        first.execute("BEGIN WORK;")
        second.execute("BEGIN WORK;")
        first.execute("MODIFY state FROM state - area SET hectare = 311 WHERE state.code = 'S1';")
        with pytest.raises(TransactionConflictError):
            second.execute(
                "MODIFY state FROM state - area SET hectare = 322 WHERE state.code = 'S1';"
            )
        assert not second.in_transaction  # the losing session is aborted
        first.execute("COMMIT WORK;")
        winner = engine.query("SELECT ALL FROM state-area WHERE state.code = 'S1';")
        assert next(iter(winner)).root_atom["hectare"] == 311

    def test_rebuild_mode_session_survives_and_rolls_back(self):
        """Regression: in rebuild maintenance mode, a DML statement inside
        BEGIN WORK must not invalidate the interpreter (which would destroy
        the session and permanently publish its uncommitted writes)."""
        database = build_geography(n_states=4, edges_per_state=3, n_rivers=1)
        engine = PrimaEngine.from_database(database, maintenance="rebuild")
        engine.query("BEGIN WORK;")
        engine.query("MODIFY state FROM state - area SET hectare = 999 WHERE state.code = 'S1';")
        engine.query("ROLLBACK WORK;")
        result = engine.query("SELECT ALL FROM state-area WHERE state.code = 'S1';")
        assert next(iter(result)).root_atom["hectare"] != 999
        # Rebuild semantics resume once the session is over.
        engine.query("MODIFY state FROM state - area SET hectare = 7 WHERE state.code = 'S1';")
        builds = engine.maintenance_statistics()["snapshot_builds"]
        engine.query("SELECT ALL FROM state-area WHERE state.code = 'S1';")
        assert engine.maintenance_statistics()["snapshot_builds"] == builds + 1

    def test_pin_during_uncommitted_transaction_sees_clean_state(self):
        """Regression: a snapshot pinned while another transaction holds
        uncommitted writes must read the pre-transaction values, both before
        and after that transaction rolls back (no dirty reads)."""
        db = versioned_db()
        txn = Transaction(db)
        txn.begin()
        txn.modify_atom("state", "s1", hectare=666)  # uncommitted
        snapshot = db.versioning.make_snapshot(db.pin())
        view = db.at(snapshot)
        assert view.atyp("state").get("s1")["hectare"] == 100
        txn.rollback()
        assert view.atyp("state").get("s1")["hectare"] == 100
        db.release_pin(snapshot.generation)

    def test_literal_path_is_rejected_under_a_snapshot(self):
        """Regression: optimize=False must not silently read the head while a
        snapshot (session or handle) is in play."""
        from repro.exceptions import MQLSemanticError

        engine = small_engine()
        engine.query("BEGIN WORK;")
        with pytest.raises(MQLSemanticError):
            engine.query("SELECT ALL FROM state-area;", optimize=False)
        engine.query("COMMIT WORK;")
        assert len(engine.query("SELECT ALL FROM state-area;", optimize=False)) > 0

    def test_transaction_statement_misuse(self):
        engine = small_engine()
        with pytest.raises(TransactionError):
            engine.query("COMMIT WORK;")
        engine.query("BEGIN;")  # WORK is optional
        with pytest.raises(TransactionError):
            engine.query("BEGIN WORK;")
        result = engine.query("ROLLBACK WORK;")
        assert result.explanation == "ROLLBACK WORK"
        assert len(result) == 0


# -------------------------------------------------------- EXPLAIN coverage


class TestExplainDML:
    def test_explain_insert_reports_validation_checks(self):
        engine = small_engine()
        result = engine.query(
            "EXPLAIN INSERT state - area VALUES {name: 'x', code: 'XX', hectare: 1, "
            "area: {_id: 'a1'}};"
        )
        text = result.explanation
        assert "ι insert" in text
        assert "will validate" in text
        assert "domain check state(" in text
        assert "domain check area(" in text
        assert "cardinality check state-area" in text
        assert "shared subobject: reuse existing atom _id='a1'" in text
        assert result.write_summary is None  # nothing executed

    def test_explain_modify_reports_read_and_checks(self):
        engine = small_engine()
        result = engine.query(
            "EXPLAIN MODIFY state FROM state - area SET hectare = 5 WHERE state.code = 'S1';"
        )
        text = result.explanation
        assert "μ modify state" in text
        assert "qualifying read" in text
        assert "domain check state.hectare = 5" in text
        assert "identity preserved" in text

    def test_explain_delete_still_reports_qualifying_read(self):
        engine = small_engine()
        result = engine.query(
            "EXPLAIN DELETE FROM state - area WHERE state.code = 'S1';"
        )
        assert "δ delete" in result.explanation
        assert "qualifying read" in result.explanation

    def test_explain_transaction_statement_is_rejected(self):
        engine = small_engine()
        from repro.exceptions import MQLSemanticError

        with pytest.raises(MQLSemanticError):
            engine.query("EXPLAIN BEGIN WORK;")


# ------------------------------------------------------ pin refcount hygiene


class TestPinRefcounting:
    """`pins_active` bookkeeping must stay exact under sloppy release patterns.

    `SnapshotHandle.release()` is documented idempotent and
    `VersioningState.release()` tolerates over-release; these regression
    tests assert the tolerance never *under*-counts another reader's pin.
    """

    def test_double_release_does_not_steal_a_concurrent_pin(self):
        engine = small_engine()
        first = engine.snapshot_at()
        second = engine.snapshot_at()
        assert engine.maintenance_report()["pins_active"] == 2
        first.release()
        first.release()
        first.release()
        # Over-releasing `first` must not drop `second`'s pin.
        assert engine.maintenance_report()["pins_active"] == 1
        engine.query(
            "MODIFY state FROM state - area SET hectare = 5 WHERE state.code = 'S1';"
        )
        assert engine.maintenance_report()["versions_live"] > 0
        second.release()
        report = engine.maintenance_report()
        assert report["pins_active"] == 0
        assert report["versions_live"] == 0
        assert report["oldest_pinned_generation"] is None

    def test_context_manager_reentry_after_release_stays_exact(self):
        engine = small_engine()
        handle = engine.snapshot_at()
        with handle:
            assert engine.maintenance_report()["pins_active"] == 1
        assert handle.released
        assert engine.maintenance_report()["pins_active"] == 0
        # Re-entering a released handle must not resurrect (or double-free)
        # the pin; queries inside stay rejected.
        with handle:
            assert engine.maintenance_report()["pins_active"] == 0
            with pytest.raises(StorageError):
                handle.query("SELECT ALL FROM state-area;")
        assert engine.maintenance_report()["pins_active"] == 0

    def test_versioning_state_over_release_raises(self):
        """Registry-level over-release is an error, not a silent no-op.

        The silent tolerance this test used to codify masked refcount races
        under real threads (a double release could free chains another
        reader still needed); the registry now raises ``StorageError`` while
        ``SnapshotHandle.release()`` stays idempotent at the handle level.
        """
        from repro.core.versions import VersioningState

        state = VersioningState()
        state.tick()
        pinned = state.pin()
        assert state.pins_active == 1
        state.release(pinned)
        with pytest.raises(StorageError):
            state.release(pinned)  # over-release: refused
        with pytest.raises(StorageError):
            state.release(99)  # releasing a never-pinned generation: refused
        assert state.pins_active == 0
        assert state.oldest_pinned() is None
        # Refcounting per generation: two pins on one generation need two
        # releases; the third is refused and the count stays exact.
        state.pin(pinned)
        state.pin(pinned)
        state.release(pinned)
        assert state.pins_active == 1
        state.release(pinned)
        with pytest.raises(StorageError):
            state.release(pinned)
        assert state.pins_active == 0

    def test_pin_below_truncation_horizon_is_rejected(self):
        """A pin below the retention floor would read truncated chains."""
        from repro.core.versions import VersioningState

        state = VersioningState()
        for _ in range(5):
            state.tick()
        # With no pins and no transactions nothing is retained: any older
        # generation would silently resolve to head state.
        with pytest.raises(StorageError):
            state.pin(3)
        oldest = state.pin()  # the current generation is always pinnable
        assert oldest == 5
        state.tick()
        state.tick()
        # History below the oldest pin was never recorded (or has been
        # truncated); a snapshot there would be silently stale.
        with pytest.raises(StorageError):
            state.pin(4)
        # At or above the horizon stays fine.
        assert state.pin(5) == 5
        assert state.pin(6) == 6
        state.release(5)
        state.release(5)
        state.release(6)
        assert state.pins_active == 0

    def test_pin_below_active_transaction_start_is_rejected(self):
        """Active transactions extend the horizon: their pre-states must
        survive, and generations before their start were never recorded."""
        engine = small_engine()
        database = engine.to_database()
        from repro.manipulation.transactions import Transaction

        engine.query(
            "MODIFY state FROM state - area SET hectare = 1 WHERE state.code = 'S1';"
        )
        txn = Transaction(database)
        txn.begin()
        try:
            start = txn.start_generation
            assert database.versioning.truncation_horizon() == start
            with pytest.raises(StorageError):
                database.versioning.pin(start - 1)
        finally:
            txn.rollback()

    def test_release_while_session_transaction_active(self):
        engine = small_engine()
        engine.query("BEGIN WORK;")
        assert engine.maintenance_report()["pins_active"] == 1  # the session's pin
        handle = engine.snapshot_at()
        assert engine.maintenance_report()["pins_active"] == 2
        handle.release()
        handle.release()
        # Releasing the reader (twice) must leave the session's own pin.
        assert engine.maintenance_report()["pins_active"] == 1
        engine.query(
            "MODIFY state FROM state - area SET hectare = 9 WHERE state.code = 'S1';"
        )
        engine.query("COMMIT WORK;")
        report = engine.maintenance_report()
        assert report["pins_active"] == 0
        assert engine.maintenance_report()["versions_live"] == 0
