"""Unit tests for type graphs and the md_graph predicate (Definition 5)."""

import pytest

from repro.core.graph import DirectedLink, TypeGraph, md_graph, require_md_graph, root_of
from repro.exceptions import MoleculeGraphError


def edges(*triples):
    return [DirectedLink(*triple) for triple in triples]


class TestDirectedLink:
    def test_as_tuple_and_equality(self):
        dl = DirectedLink("l", "a", "b")
        assert dl.as_tuple() == ("l", "a", "b")
        assert dl == DirectedLink("l", "a", "b")
        assert dl != DirectedLink("l", "b", "a")

    def test_reversed(self):
        dl = DirectedLink("l", "a", "b").reversed()
        assert (dl.source, dl.target) == ("b", "a")

    def test_hashable(self):
        assert len({DirectedLink("l", "a", "b"), DirectedLink("l", "a", "b")}) == 1


class TestTypeGraph:
    def chain(self):
        return TypeGraph(["a", "b", "c"], edges(("l1", "a", "b"), ("l2", "b", "c")))

    def test_children_and_parents(self):
        graph = self.chain()
        assert [e.target for e in graph.children_edges("a")] == ["b"]
        assert [e.source for e in graph.parent_edges("c")] == ["b"]
        assert graph.children_edges("c") == ()

    def test_roots_and_leaves(self):
        graph = self.chain()
        assert graph.roots() == ("a",)
        assert graph.leaves() == ("c",)

    def test_acyclic_and_coherent(self):
        graph = self.chain()
        assert graph.is_acyclic()
        assert graph.is_coherent()

    def test_cycle_detected(self):
        graph = TypeGraph(["a", "b"], edges(("l1", "a", "b"), ("l2", "b", "a")))
        assert not graph.is_acyclic()
        with pytest.raises(MoleculeGraphError):
            graph.topological_order()

    def test_disconnected_detected(self):
        graph = TypeGraph(["a", "b", "c"], edges(("l1", "a", "b")))
        assert not graph.is_coherent()

    def test_single_node_coherent(self):
        graph = TypeGraph(["a"], [])
        assert graph.is_coherent()
        assert graph.roots() == ("a",)

    def test_topological_order_root_first(self):
        order = self.chain().topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_reachable_from(self):
        graph = TypeGraph(
            ["a", "b", "c", "d"], edges(("l1", "a", "b"), ("l2", "a", "c"), ("l3", "c", "d"))
        )
        assert graph.reachable_from("a") == frozenset({"a", "b", "c", "d"})
        assert graph.reachable_from("c") == frozenset({"c", "d"})

    def test_subgraph(self):
        graph = TypeGraph(
            ["a", "b", "c"], edges(("l1", "a", "b"), ("l2", "b", "c"))
        )
        sub = graph.subgraph(["a", "b"])
        assert sub.nodes == ("a", "b")
        assert len(sub.edges) == 1

    def test_edge_outside_nodes_rejected(self):
        with pytest.raises(MoleculeGraphError):
            TypeGraph(["a"], edges(("l1", "a", "b")))


class TestMdGraphPredicate:
    def test_valid_chain(self):
        ok, reason = md_graph(["a", "b"], edges(("l", "a", "b")))
        assert ok, reason

    def test_valid_dag_with_branches(self):
        ok, _ = md_graph(
            ["point", "edge", "area", "net"],
            edges(("e-p", "point", "edge"), ("a-e", "edge", "area"), ("n-e", "edge", "net")),
        )
        assert ok

    def test_single_node_valid(self):
        ok, _ = md_graph(["part"], [])
        assert ok

    def test_empty_invalid(self):
        ok, reason = md_graph([], [])
        assert not ok and "at least one" in reason

    def test_duplicate_nodes_invalid(self):
        ok, reason = md_graph(["a", "a"], [])
        assert not ok and "duplicate" in reason

    def test_cycle_invalid(self):
        ok, reason = md_graph(["a", "b"], edges(("l1", "a", "b"), ("l2", "b", "a")))
        assert not ok and "cycle" in reason

    def test_disconnected_invalid(self):
        ok, reason = md_graph(["a", "b"], [])
        assert not ok and "coherent" in reason

    def test_two_roots_invalid(self):
        ok, reason = md_graph(
            ["a", "b", "c"], edges(("l1", "a", "c"), ("l2", "b", "c"))
        )
        assert not ok and "root" in reason

    def test_require_md_graph_raises(self):
        with pytest.raises(MoleculeGraphError):
            require_md_graph(["a", "b"], [])

    def test_root_of(self):
        assert root_of(["a", "b"], edges(("l", "a", "b"))) == "a"
