"""The runtime lock-discipline checker (``REPRO_DEBUG_LOCKS=1``).

Unit tests for the instrumented locks (ascending acquisitions pass,
non-ascending ones raise :class:`LockOrderViolation` at the site, RLock
re-entry is legal, the per-thread stack unwinds correctly), plus an
engine-level scenario: a full write/query/transaction workload on an
engine whose locks are all instrumented must run violation-free, and its
``maintenance_report()`` must carry the ``locks_declared`` /
``lock_assertions`` counters proving the checker engaged.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import runtime
from repro.analysis.registry import declared_count
from repro.analysis.runtime import (
    ENV_FLAG,
    LockOrderViolation,
    OrderedLock,
    OrderedRLock,
    assertion_count,
    checker_report,
    held_locks,
    make_lock,
    make_rlock,
)
from repro.storage import PrimaEngine


@pytest.fixture
def debug_locks(monkeypatch):
    """Turn the checker on for the duration of one test."""
    monkeypatch.setenv(ENV_FLAG, "1")


class TestFactories:
    def test_plain_locks_when_disabled(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not isinstance(make_lock("WriteAheadLog._lock"), OrderedLock)
        assert not isinstance(
            make_rlock("WriteAheadLog._lock"), OrderedRLock
        )

    def test_instrumented_locks_when_enabled(self, debug_locks):
        assert isinstance(
            make_lock("SnapshotHandle._release_guard"), OrderedLock
        )
        assert isinstance(make_rlock("WriteAheadLog._lock"), OrderedRLock)

    def test_unregistered_name_is_rejected(self, debug_locks):
        with pytest.raises(LockOrderViolation, match="not declared"):
            make_lock("Nobody._lock")

    def test_kind_mismatch_is_rejected(self, debug_locks):
        # WriteAheadLog._lock is registered as an RLock.
        with pytest.raises(LockOrderViolation, match="registered as a RLock"):
            make_lock("WriteAheadLog._lock")


class TestOrdering:
    def test_ascending_acquisition_passes(self):
        low = OrderedRLock("PrimaEngine._write_lock")  # level 10
        high = OrderedRLock("WriteAheadLog._lock")  # level 52
        with low:
            with high:
                assert [name for name, _ in held_locks()] == [
                    "PrimaEngine._write_lock",
                    "WriteAheadLog._lock",
                ]
        assert held_locks() == []

    def test_descending_acquisition_raises(self):
        low = OrderedRLock("PrimaEngine._write_lock")  # level 10
        high = OrderedRLock("WriteAheadLog._lock")  # level 52
        with high:
            with pytest.raises(LockOrderViolation) as excinfo:
                with low:
                    pass  # pragma: no cover - never acquired
        message = str(excinfo.value)
        assert "PrimaEngine._write_lock" in message
        assert "WriteAheadLog._lock" in message
        assert "level 10" in message and "level 52" in message
        # The failed acquisition left no residue on the held stack.
        assert held_locks() == []

    def test_equal_level_cross_instance_raises(self):
        # Two head locks of the same per-instance family must not nest.
        first = OrderedRLock("AtomType._lock")
        second = OrderedRLock("AtomType._lock")
        with first:
            with pytest.raises(LockOrderViolation):
                with second:
                    pass  # pragma: no cover

    def test_rlock_reentry_is_legal(self):
        lock = OrderedRLock("AtomType._lock")
        with lock:
            with lock:
                assert len(held_locks()) == 2
        assert held_locks() == []

    def test_plain_lock_reentry_raises(self):
        lock = OrderedLock("SnapshotHandle._release_guard")
        with lock:
            with pytest.raises(LockOrderViolation, match="re-acquired"):
                lock.acquire()

    def test_release_unwinds_out_of_order_holds(self):
        low = OrderedRLock("PrimaEngine._write_lock")
        high = OrderedRLock("WriteAheadLog._lock")
        low.acquire()
        high.acquire()
        low.release()  # released out of acquisition order
        assert [name for name, _ in held_locks()] == ["WriteAheadLog._lock"]
        high.release()
        assert held_locks() == []

    def test_held_stacks_are_per_thread(self):
        lock = OrderedRLock("VersioningState.lock")
        seen = []
        with lock:
            worker = threading.Thread(target=lambda: seen.append(held_locks()))
            worker.start()
            worker.join()
        assert seen == [[]]

    def test_assertions_are_counted(self):
        before = assertion_count()
        lock = OrderedRLock("AtomType._lock")
        with lock:
            pass
        assert assertion_count() == before + 1


class TestCheckerReport:
    def test_report_carries_counts_when_enabled(self, debug_locks):
        with OrderedRLock("AtomType._lock"):
            pass
        report = checker_report()
        assert report is not None
        assert report["locks_declared"] == declared_count()
        assert report["lock_assertions"] > 0

    def test_report_is_none_when_never_engaged(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        monkeypatch.setattr(runtime, "_assertions", 0)
        assert checker_report() is None


class TestEngineUnderChecking:
    """A real engine workload with every lock instrumented."""

    @pytest.fixture
    def engine(self, debug_locks):
        engine = PrimaEngine("lockcheck")
        engine.create_atom_type(
            "item", {"name": "string", "grp": "string", "qty": "integer"}
        )
        engine.create_atom_type("part", {"name": "string"})
        engine.create_link_type("composition", "item", "part")
        yield engine
        engine.close()

    def test_write_and_query_workload_is_violation_free(self, engine):
        before = assertion_count()
        for index in range(8):
            engine.store_atom(
                "item",
                identifier=f"i{index}",
                name=f"item-{index}",
                grp="g",
                qty=index,
            )
            engine.store_atom("part", identifier=f"p{index}", name=f"part-{index}")
            engine.connect("composition", f"i{index}", f"p{index}")
        result = engine.query("SELECT ALL FROM item - part;")
        assert len(result) == 8
        engine.delete_atom("part", "p7")
        assert assertion_count() > before

    def test_transactions_under_checking(self, engine):
        interpreter = engine.interpreter()
        interpreter.execute("BEGIN WORK;")
        interpreter.execute(
            "INSERT item VALUES {name: 'in-tx', grp: 'g', qty: 1};"
        )
        interpreter.execute("COMMIT WORK;")
        result = engine.query("SELECT ALL FROM item WHERE item.qty = 1;")
        assert len(result) == 1

    def test_snapshot_readers_under_checking(self, engine):
        engine.store_atom(
            "item", identifier="snap", name="snap", grp="g", qty=9
        )
        handle = engine.snapshot_at()
        try:
            assert len(handle.query("SELECT ALL FROM item;")) >= 1
        finally:
            handle.release()

    def test_maintenance_report_carries_lock_counters(self, engine):
        engine.store_atom("item", identifier="c1", name="c", grp="g", qty=2)
        report = engine.maintenance_report()
        assert report["locks_declared"] == declared_count()
        assert report["lock_assertions"] > 0

    def test_report_counters_absent_without_checking(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        monkeypatch.setattr(runtime, "_assertions", 0)
        engine = PrimaEngine("plain")
        try:
            report = engine.maintenance_report()
            assert "locks_declared" not in report
            assert "lock_assertions" not in report
        finally:
            engine.close()
