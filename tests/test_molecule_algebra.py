"""Unit tests for the molecule algebra α, Σ, Π, X, Ω, Δ, Ψ and prop (Definitions 8-10, Theorems 2-3)."""

import pytest

from repro.core.derivation import mv_graph
from repro.core.molecule import MoleculeTypeDescription
from repro.core.molecule_algebra import (
    MoleculeAlgebra,
    ResultSet,
    molecule_difference,
    molecule_intersection,
    molecule_product,
    molecule_projection,
    molecule_restriction,
    molecule_type_definition,
    molecule_union,
    propagate,
)
from repro.core.predicates import attr
from repro.exceptions import (
    AlgebraError,
    MoleculeGraphError,
    RestrictionError,
    UnionCompatibilityError,
    UnknownNameError,
)


@pytest.fixture()
def oeuvre(tiny_db):
    return molecule_type_definition(
        tiny_db, "oeuvre", ["author", "book"], [("wrote", "author", "book")]
    )


class TestDefinition:
    def test_alpha_names_and_derives(self, tiny_db, oeuvre):
        assert oeuvre.name == "oeuvre"
        assert len(oeuvre) == 2
        assert oeuvre.description.root == "author"

    def test_alpha_accepts_prepared_description(self, tiny_db):
        description = MoleculeTypeDescription(["author", "book"], [("wrote", "author", "book")])
        molecule_type = molecule_type_definition(tiny_db, "oeuvre", description)
        assert len(molecule_type) == 2

    def test_alpha_resolves_anonymous_links(self, tiny_db):
        molecule_type = molecule_type_definition(
            tiny_db, "oeuvre", ["author", "book"], [("-", "author", "book")]
        )
        assert molecule_type.description.directed_links[0].link_type_name == "wrote"

    def test_alpha_unknown_atom_type_raises(self, tiny_db):
        with pytest.raises(UnknownNameError):
            molecule_type_definition(tiny_db, "x", ["author", "missing"], [("-", "author", "missing")])


class TestRestriction:
    def test_keeps_qualifying_molecules(self, tiny_db, oeuvre):
        result = molecule_restriction(tiny_db, oeuvre, attr("year", "book") < 1975)
        assert len(result.molecule_type) == 1
        assert result.molecule_type.occurrence[0].root_atom["name"] == "Codd"

    def test_result_valid_over_enlarged_database(self, tiny_db, oeuvre):
        result = molecule_restriction(tiny_db, oeuvre, attr("year", "book") < 1975)
        for molecule in result.molecule_type:
            ok, reason = mv_graph(result.database, result.molecule_type.description, molecule)
            assert ok, reason

    def test_original_database_untouched(self, tiny_db, oeuvre):
        molecule_restriction(tiny_db, oeuvre, attr("year", "book") < 1975)
        assert len(tiny_db.atom_types) == 2
        assert len(tiny_db.link_types) == 1

    def test_callable_accepted(self, tiny_db, oeuvre):
        result = molecule_restriction(tiny_db, oeuvre, lambda m: len(m) > 2)
        assert len(result.molecule_type) == 2  # both authors have 2 books

    def test_non_formula_rejected(self, tiny_db, oeuvre):
        with pytest.raises(RestrictionError):
            molecule_restriction(tiny_db, oeuvre, "year < 1975")

    def test_empty_result(self, tiny_db, oeuvre):
        result = molecule_restriction(tiny_db, oeuvre, attr("year", "book") > 3000)
        assert len(result.molecule_type) == 0

    def test_root_condition(self, geo_db, mt_state_desc):
        mt_state = molecule_type_definition(geo_db, "mt_state", mt_state_desc)
        result = molecule_restriction(geo_db, mt_state, attr("hectare", "state") > 800)
        assert {m.root_atom["code"] for m in result.molecule_type} == {"BA", "GO", "MG", "MS"}

    def test_leaf_condition(self, geo_db, point_neighborhood_desc):
        neighborhood = molecule_type_definition(geo_db, "pn", point_neighborhood_desc)
        result = molecule_restriction(geo_db, neighborhood, attr("name", "point") == "pn")
        assert len(result.molecule_type) == 1


class TestProjection:
    def test_projects_structure_and_molecules(self, geo_db, mt_state_desc):
        mt_state = molecule_type_definition(geo_db, "mt_state", mt_state_desc)
        result = molecule_projection(geo_db, mt_state, ["state", "area"])
        assert len(result.molecule_type) == 10
        for molecule in result.molecule_type:
            assert len(molecule) == 2  # one state + one area

    def test_projection_must_keep_root(self, geo_db, mt_state_desc):
        mt_state = molecule_type_definition(geo_db, "mt_state", mt_state_desc)
        with pytest.raises(MoleculeGraphError):
            molecule_projection(geo_db, mt_state, ["area", "edge"])

    def test_projection_unknown_type_rejected(self, geo_db, mt_state_desc):
        mt_state = molecule_type_definition(geo_db, "mt_state", mt_state_desc)
        with pytest.raises(MoleculeGraphError):
            molecule_projection(geo_db, mt_state, ["state", "river"])

    def test_projection_accepts_bare_names_on_propagated_types(self, geo_db, mt_state_desc):
        mt_state = molecule_type_definition(geo_db, "mt_state", mt_state_desc)
        restricted = molecule_restriction(geo_db, mt_state, attr("hectare", "state") > 800)
        projected = molecule_projection(
            restricted.database, restricted.molecule_type, ["state", "area"]
        )
        assert len(projected.molecule_type) == 4


class TestSetOperations:
    def test_union_deduplicates(self, tiny_db, oeuvre):
        result = molecule_union(tiny_db, oeuvre, oeuvre)
        assert len(result.molecule_type) == len(oeuvre)

    def test_union_of_disjoint_restrictions(self, tiny_db, oeuvre):
        early = molecule_restriction(tiny_db, oeuvre, attr("year", "book") < 1975)
        late = molecule_restriction(early.database, oeuvre, attr("year", "book") >= 1980)
        result = molecule_union(late.database, early.molecule_type, late.molecule_type)
        assert len(result.molecule_type) == 2

    def test_union_incompatible_structures_rejected(self, tiny_db, oeuvre, geo_db, mt_state_desc):
        mt_state = molecule_type_definition(geo_db, "mt_state", mt_state_desc)
        with pytest.raises(UnionCompatibilityError):
            molecule_union(tiny_db, oeuvre, mt_state)

    def test_difference(self, tiny_db, oeuvre):
        early = molecule_restriction(tiny_db, oeuvre, attr("year", "book") < 1975)
        result = molecule_difference(early.database, oeuvre, early.molecule_type)
        assert len(result.molecule_type) == 1
        assert result.molecule_type.occurrence[0].root_atom["name"] == "Ullman"

    def test_difference_with_empty_right_operand(self, tiny_db, oeuvre):
        none = molecule_restriction(tiny_db, oeuvre, attr("year", "book") > 3000)
        result = molecule_difference(none.database, oeuvre, none.molecule_type)
        assert len(result.molecule_type) == len(oeuvre)

    def test_intersection_identity(self, tiny_db, oeuvre):
        early = molecule_restriction(tiny_db, oeuvre, attr("year", "book") < 1975)
        survey = molecule_restriction(early.database, oeuvre, attr("title", "book") == "Survey")
        result = molecule_intersection(survey.database, early.molecule_type, survey.molecule_type)
        # Codd wrote both an early book and the survey — the intersection is Codd.
        roots = {m.root_atom.identifier for m in result.molecule_type}
        assert roots == {"a1"}

    def test_self_intersection_is_identity(self, tiny_db, oeuvre):
        result = molecule_intersection(tiny_db, oeuvre, oeuvre)
        assert len(result.molecule_type) == len(oeuvre)


class TestProduct:
    def test_pairs_molecules(self, geo_db):
        states = molecule_type_definition(
            geo_db, "s", ["state", "area"], [("state-area", "state", "area")]
        )
        rivers = molecule_type_definition(
            geo_db, "r", ["river", "net"], [("river-net", "river", "net")]
        )
        result = molecule_product(geo_db, states, rivers)
        assert len(result.molecule_type) == len(states) * len(rivers)

    def test_product_molecule_contains_both_operands(self, geo_db):
        states = molecule_type_definition(
            geo_db, "s", ["state", "area"], [("state-area", "state", "area")]
        )
        rivers = molecule_type_definition(
            geo_db, "r", ["river", "net"], [("river-net", "river", "net")]
        )
        result = molecule_product(geo_db, states, rivers)
        sample = result.molecule_type.occurrence[0]
        assert len(sample.atoms_of_type("state")) == 1
        assert len(sample.atoms_of_type("river")) == 1

    def test_product_same_root_rejected(self, tiny_db, oeuvre):
        with pytest.raises(AlgebraError):
            molecule_product(tiny_db, oeuvre, oeuvre)


class TestPropagation:
    def test_prop_reproduces_result_set_exactly(self, tiny_db, oeuvre):
        qualifying = tuple(m for m in oeuvre if m.root_atom.identifier == "a1")
        result_set = ResultSet("only_codd", oeuvre.description, qualifying)
        result = propagate(result_set, tiny_db)
        assert len(result.molecule_type) == 1
        derived = result.molecule_type.occurrence[0]
        assert derived.atom_identifiers == qualifying[0].atom_identifiers

    def test_prop_creates_renamed_types(self, tiny_db, oeuvre):
        result_set = ResultSet("copy", oeuvre.description, tuple(oeuvre))
        result = propagate(result_set, tiny_db)
        assert all("@copy" in at.name for at in result.propagated_atom_types)
        assert all("~copy" in lt.name for lt in result.propagated_link_types)
        assert result.database.is_valid()

    def test_prop_restricts_occurrences(self, tiny_db, oeuvre):
        qualifying = tuple(m for m in oeuvre if m.root_atom.identifier == "a1")
        result_set = ResultSet("only_codd", oeuvre.description, qualifying)
        result = propagate(result_set, tiny_db)
        propagated_root = next(
            at for at in result.propagated_atom_types if at.name.startswith("author@")
        )
        assert set(propagated_root.identifiers()) == {"a1"}


class TestFacade:
    def test_chains_thread_database(self, geo_db, mt_state_desc):
        algebra = MoleculeAlgebra(geo_db)
        mt_state = algebra.define("mt_state", mt_state_desc)
        big = algebra.restrict(mt_state, attr("hectare", "state") > 700)
        projected = algebra.project(big.molecule_type, ["state", "area"])
        merged = algebra.union(projected.molecule_type, projected.molecule_type)
        assert len(merged.molecule_type) == len(projected.molecule_type)
        assert algebra.database.is_valid()
        assert len(algebra.database.atom_types) > len(geo_db.atom_types)

    def test_result_tuple_unpacking(self, tiny_db, oeuvre):
        molecule_type, database = molecule_restriction(tiny_db, oeuvre, attr("year", "book") < 1975)
        assert len(molecule_type) == 1
        assert database.is_valid()
