"""DML parity: MQL statements and the programmatic manipulation API must
produce byte-identical database states.

Both entry points run the same physical write operators inside the same
undo-logged transaction machinery, so after equivalent operation sequences
the two databases must agree *exactly* — same atom identifiers, same values,
same link pairs.  States are compared through a canonical JSON serialization
(the "byte-identical" check), with the surrogate-identifier counter reset
before each side so generated identifiers line up.

Covers the geography and bill-of-materials datasets plus hypothesis sweeps
of random insert/delete/modify interleavings.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.atom import reset_surrogate_counter
from repro.core.database import Database
from repro.core.molecule import MoleculeTypeDescription
from repro.core.molecule_algebra import molecule_type_definition
from repro.core.recursion import RecursiveDescription, recursive_molecule_type
from repro.datasets.bill_of_materials import build_bill_of_materials
from repro.datasets.geography import load_geography
from repro.manipulation import delete_molecule, insert_molecule, modify_atom
from repro.mql import execute


def canonical_state(db: Database) -> str:
    """A canonical, byte-comparable serialization of a database's occurrence."""
    state = {
        "atoms": {
            atom_type.name: {
                atom.identifier: {k: repr(v) for k, v in sorted(atom.values.items())}
                for atom in atom_type
            }
            for atom_type in db.atom_types
        },
        "links": {
            link_type.name: sorted(
                "--".join(sorted(link.identifiers)) for link in link_type
            )
            for link_type in db.link_types
        },
    }
    return json.dumps(state, sort_keys=True)


OEUVRE = MoleculeTypeDescription(["author", "book"], [("wrote", "author", "book")])


def build_library() -> Database:
    db = Database("lib")
    db.define_atom_type("author", {"name": "string", "country": "string"})
    db.define_atom_type("book", {"title": "string", "year": "integer"})
    db.define_link_type("wrote", "author", "book")
    a1 = db.insert_atom("author", identifier="a1", name="Codd", country="UK")
    a2 = db.insert_atom("author", identifier="a2", name="Ullman", country="US")
    b1 = db.insert_atom("book", identifier="b1", title="Relational Model", year=1970)
    b2 = db.insert_atom("book", identifier="b2", title="Principles", year=1980)
    b3 = db.insert_atom("book", identifier="b3", title="Survey", year=1985)
    db.connect("wrote", a1, b1)
    db.connect("wrote", a2, b2)
    db.connect("wrote", a1, b3)
    db.connect("wrote", a2, b3)
    return db


class TestGeographyParity:
    def test_insert_parity(self):
        data = {
            "name": "Tocantins",
            "code": "TO",
            "hectare": 500,
            "area": [{"area_id": "a_to", "kind": "state-border"}],
        }
        reset_surrogate_counter()
        via_mql = load_geography()
        execute(
            via_mql,
            "INSERT state - area VALUES {name: 'Tocantins', code: 'TO', hectare: 500, "
            "area: {area_id: 'a_to', kind: 'state-border'}};",
        )
        reset_surrogate_counter()
        via_api = load_geography()
        insert_molecule(
            via_api,
            MoleculeTypeDescription(["state", "area"], [("state-area", "state", "area")]),
            data,
        )
        assert canonical_state(via_mql) == canonical_state(via_api)

    @pytest.mark.parametrize("cascade", [False, True])
    def test_delete_parity(self, cascade):
        via_mql = load_geography()
        keyword = "CASCADE " if cascade else ""
        execute(
            via_mql,
            f"DELETE {keyword}FROM state - area - edge - point WHERE state.code = 'SP';",
        )
        via_api = load_geography()
        description = MoleculeTypeDescription(
            ["state", "area", "edge", "point"],
            [
                ("state-area", "state", "area"),
                ("area-edge", "area", "edge"),
                ("edge-point", "edge", "point"),
            ],
        )
        mt = molecule_type_definition(via_api, "mt_state", description)
        for molecule in mt.find(code="SP"):
            delete_molecule(via_api, molecule, cascade=cascade)
        assert canonical_state(via_mql) == canonical_state(via_api)

    def test_modify_parity(self):
        via_mql = load_geography()
        execute(via_mql, "MODIFY state FROM state - area SET hectare = 42 WHERE hectare > 700;")
        via_api = load_geography()
        for atom in [a for a in via_api.atyp("state") if a["hectare"] > 700]:
            modify_atom(via_api, "state", atom.identifier, hectare=42)
        assert canonical_state(via_mql) == canonical_state(via_api)


class TestBillOfMaterialsParity:
    def test_recursive_delete_parity(self):
        via_mql = build_bill_of_materials(depth=2, fan_out=2, n_roots=2, share_every=2)
        execute(
            via_mql,
            "DELETE FROM RECURSIVE part [composition] DOWN WHERE part.part_no = 'P00001';",
        )
        via_api = build_bill_of_materials(depth=2, fan_out=2, n_roots=2, share_every=2)
        description = RecursiveDescription("part", "composition", "down", None)
        mt = recursive_molecule_type(via_api, "assembly", description)
        for molecule in mt:
            if molecule.root_atom["part_no"] == "P00001":
                delete_molecule(via_api, molecule)
        assert canonical_state(via_mql) == canonical_state(via_api)

    def test_recursive_modify_parity(self):
        via_mql = build_bill_of_materials(depth=3, fan_out=2, n_roots=1)
        execute(
            via_mql,
            "MODIFY part FROM RECURSIVE part [composition] DOWN SET cost = 1.5 "
            "WHERE part.level = 1;",
        )
        via_api = build_bill_of_materials(depth=3, fan_out=2, n_roots=1)
        description = RecursiveDescription("part", "composition", "down", None)
        mt = recursive_molecule_type(via_api, "assembly", description)
        seen = set()
        for molecule in mt:
            # WHERE has existential semantics: a molecule qualifies when some
            # component atom satisfies the comparison.
            if not any(atom["level"] == 1 for atom in molecule.atoms):
                continue
            for atom in molecule.atoms:
                if atom.identifier not in seen:
                    seen.add(atom.identifier)
                    modify_atom(via_api, "part", atom.identifier, cost=1.5)
        assert canonical_state(via_mql) == canonical_state(via_api)


# ----------------------------------------------------------- hypothesis sweep

NAMES = ["Date", "Gray", "Stonebraker", "Chen"]

operation = st.one_of(
    st.tuples(st.just("insert"), st.sampled_from(NAMES), st.integers(0, 3)),
    st.tuples(st.just("delete"), st.sampled_from(NAMES + ["Codd", "Ullman"]), st.booleans()),
    st.tuples(
        st.just("modify"), st.sampled_from(NAMES + ["Codd", "Ullman"]), st.integers(1990, 1995)
    ),
)


def apply_via_mql(db: Database, op) -> None:
    kind, name, arg = op
    if kind == "insert":
        books = ", ".join(
            "{title: '%s-%d', year: %d}" % (name, i, 2000 + i) for i in range(arg)
        )
        values = "{name: '%s', country: 'XX'%s}" % (
            name,
            ", book: (%s)" % books if books else "",
        )
        execute(db, f"INSERT author - book VALUES {values};")
    elif kind == "delete":
        keyword = "CASCADE " if arg else ""
        execute(db, f"DELETE {keyword}FROM author - book WHERE author.name = '{name}';")
    else:
        execute(
            db,
            f"MODIFY book FROM author - book SET year = {arg} WHERE author.name = '{name}';",
        )


def apply_via_api(db: Database, op) -> None:
    kind, name, arg = op
    if kind == "insert":
        data = {
            "name": name,
            "country": "XX",
            "book": [{"title": f"{name}-{i}", "year": 2000 + i} for i in range(arg)],
        }
        insert_molecule(db, OEUVRE, data)
    elif kind == "delete":
        mt = molecule_type_definition(db, "oeuvre", OEUVRE)
        for molecule in mt.find(name=name):
            delete_molecule(db, molecule, cascade=arg)
    else:
        mt = molecule_type_definition(db, "oeuvre", OEUVRE)
        seen = set()
        for molecule in mt.find(name=name):
            for atom in molecule.atoms_of_type("book"):
                if atom.identifier not in seen:
                    seen.add(atom.identifier)
                    modify_atom(db, "book", atom.identifier, year=arg)


class TestRandomInterleavings:
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(ops=st.lists(operation, min_size=1, max_size=8))
    def test_random_dml_sequences_agree(self, ops):
        reset_surrogate_counter()
        via_mql = build_library()
        for op in ops:
            apply_via_mql(via_mql, op)
        reset_surrogate_counter()
        via_api = build_library()
        for op in ops:
            apply_via_api(via_api, op)
        assert canonical_state(via_mql) == canonical_state(via_api)
        via_mql.validate()
