"""MQL aggregation: edge cases, error paths, and columnar/row parity.

The Γ pipeline has two executions of every eligible aggregate — the columnar
fold over the projection arrays and the row fold over the occurrence — and
the whole design rests on them being byte-identical.  These tests pin the
semantic corners (empty inputs, all-NULL targets, missing attributes, group
keys absent from some atoms, rolled-back transactions), the translator's
rejection surface, and close with a hypothesis sweep driving random datasets
and interleaved DML through both paths.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.atom import reset_surrogate_counter
from repro.exceptions import MQLSemanticError, MQLSyntaxError
from repro.storage.engine import PrimaEngine


def build_engine(columnar: bool = True) -> PrimaEngine:
    reset_surrogate_counter()
    engine = PrimaEngine()
    engine.create_atom_type(
        "item", {"name": "string", "grp": "string", "val": "real", "qty": "integer"}
    )
    engine.set_columnar(columnar)
    return engine


def seed(engine: PrimaEngine) -> None:
    for i in range(12):
        engine.store_atom(
            "item",
            identifier=f"i{i}",
            name=f"N{i}",
            grp="even" if i % 2 == 0 else "odd",
            val=float(i),
            qty=i % 3,
        )


def rows_of(result) -> list:
    return result.to_dicts()


def fingerprint(result) -> str:
    return json.dumps(
        sorted(json.dumps(d, sort_keys=True, default=str) for d in result.to_dicts())
    )


GROUPED = (
    "SELECT COUNT(*), SUM(item.val), MIN(item.val), MAX(item.val), AVG(item.val) "
    "FROM item GROUP BY item.grp;"
)
GLOBAL = "SELECT COUNT(*), SUM(item.val), AVG(item.qty) FROM item;"


class TestEdgeCases:
    def test_grouped_aggregate_over_empty_type_yields_no_rows(self):
        engine = build_engine()
        assert rows_of(engine.query(GROUPED)) == []

    def test_global_aggregate_over_empty_type_yields_one_zero_row(self):
        engine = build_engine()
        (row,) = rows_of(engine.query(GLOBAL))
        assert row["count(*)"] == 0
        assert row["sum(item.val)"] is None
        assert row["avg(item.qty)"] is None

    def test_filter_that_excludes_everything(self):
        engine = build_engine()
        seed(engine)
        grouped = GROUPED.replace(" FROM item ", " FROM item WHERE item.val > 1000.0 ")
        assert rows_of(engine.query(grouped)) == []
        (row,) = rows_of(
            engine.query(
                "SELECT COUNT(*), MAX(item.val) FROM item WHERE item.val > 1000.0;"
            )
        )
        assert row["count(*)"] == 0
        assert row["max(item.val)"] is None

    def test_all_null_aggregation_target(self):
        engine = build_engine()
        for i in range(5):
            engine.store_atom("item", identifier=f"n{i}", name=f"N{i}", grp="g")
        (row,) = rows_of(
            engine.query(
                "SELECT COUNT(*), COUNT(item.val), SUM(item.val), MIN(item.val), "
                "AVG(item.val) FROM item GROUP BY item.grp;"
            )
        )
        assert row["count(*)"] == 5
        assert row["count(item.val)"] == 0  # COUNT(attr) skips NULLs
        assert row["sum(item.val)"] is None
        assert row["min(item.val)"] is None
        assert row["avg(item.val)"] is None

    def test_group_key_absent_from_some_atoms_forms_a_null_group(self):
        engine = build_engine()
        seed(engine)
        engine.store_atom("item", identifier="x1", name="X1", val=100.0)
        engine.store_atom("item", identifier="x2", name="X2", val=101.0)
        rows = rows_of(engine.query("SELECT COUNT(*) FROM item GROUP BY item.grp;"))
        by_key = {row["item.grp"]: row["count(*)"] for row in rows}
        assert by_key == {"even": 6, "odd": 6, None: 2}
        # NULL group keys sort last in the canonical row order.
        assert rows[-1]["item.grp"] is None

    def test_component_count_per_group(self):
        engine = build_engine()
        seed(engine)
        rows = rows_of(
            engine.query("SELECT COUNT(*), COUNT(item) FROM item GROUP BY item.grp;")
        )
        for row in rows:
            assert row["count(item)"] == row["count(*)"] == 6

    def test_aggregates_inside_a_rolled_back_transaction(self):
        engine = build_engine()
        seed(engine)
        before = fingerprint(engine.query(GROUPED))
        engine.query("BEGIN WORK;")
        engine.query(
            "INSERT item VALUES {name: 'TX', grp: 'even', val: 999.0, qty: 1};"
        )
        inside = rows_of(engine.query(GROUPED))
        even = next(row for row in inside if row["item.grp"] == "even")
        assert even["count(*)"] == 7  # the private write is visible in-tx
        assert even["max(item.val)"] == 999.0
        engine.query("ROLLBACK WORK;")
        assert fingerprint(engine.query(GROUPED)) == before
        # The in-transaction read could not use the shared projection.
        assert engine.maintenance_report()["columnar_fallbacks"] >= 1


class TestParity:
    def queries(self):
        return (
            GROUPED,
            GLOBAL,
            "SELECT COUNT(*), AVG(item.val) FROM item "
            "WHERE item.qty = 1 GROUP BY item.grp;",
        )

    def test_columnar_and_row_paths_agree(self):
        columnar, row = build_engine(), build_engine(columnar=False)
        seed(columnar)
        seed(row)
        for statement in self.queries():
            assert fingerprint(columnar.query(statement)) == fingerprint(
                row.query(statement)
            ), statement
        assert columnar.maintenance_report()["columnar_builds"] >= 1
        assert row.maintenance_report()["columnar_builds"] == 0

    def test_explain_shows_the_columnar_choice(self):
        engine = build_engine()
        seed(engine)
        engine.query(GROUPED)
        explanation = engine.query("EXPLAIN " + GROUPED).explanation
        assert "columnarize_aggregate" in explanation
        assert "columnar projection item" in explanation

    def test_disabled_columnar_keeps_the_row_operators(self):
        engine = build_engine(columnar=False)
        seed(engine)
        explanation = engine.query("EXPLAIN " + GROUPED).explanation
        assert "columnarize_aggregate" not in explanation


class TestErrors:
    def test_star_is_only_valid_in_count(self):
        engine = build_engine()
        with pytest.raises(MQLSyntaxError):
            engine.query("SELECT SUM(*) FROM item;")

    def test_dotted_select_reference_requires_grouping(self):
        engine = build_engine()
        with pytest.raises((MQLSyntaxError, MQLSemanticError)):
            engine.query("SELECT item.grp, COUNT(*) FROM item GROUP BY item.name;")

    def test_group_by_without_aggregate_is_rejected(self):
        engine = build_engine()
        with pytest.raises((MQLSyntaxError, MQLSemanticError)):
            engine.query("SELECT item.grp FROM item GROUP BY item.grp;")

    def test_group_by_must_reference_the_root(self):
        engine = build_engine()
        engine.create_atom_type("tag", {"label": "string"})
        engine.create_link_type("tagged", "item", "tag")
        with pytest.raises(MQLSemanticError, match="root"):
            engine.query("SELECT COUNT(*) FROM item - tag GROUP BY tag.label;")

    def test_aggregates_cannot_appear_in_set_operations(self):
        engine = build_engine()
        with pytest.raises(MQLSemanticError, match="set operations"):
            engine.query(
                "SELECT COUNT(*) FROM item UNION SELECT COUNT(*) FROM item;"
            )

    def test_aggregation_over_recursive_structures_is_rejected(self):
        engine = build_engine()
        engine.create_link_type("contains", "item", "item")
        with pytest.raises(MQLSemanticError, match="RECURSIVE"):
            engine.query(
                "SELECT COUNT(*) FROM RECURSIVE item [contains] DOWN;"
            )

    def test_literal_unoptimized_path_rejects_aggregates(self):
        engine = build_engine()
        seed(engine)
        with pytest.raises(MQLSemanticError, match="planned pipeline"):
            engine.query(GLOBAL, optimize=False)


# ------------------------------------------------------------- random sweeps


@st.composite
def workloads(draw):
    """A random op sequence over a 30-slot identifier space.

    Values may be None (missing attribute) to exercise NULL folds; deletes
    and modifications target arbitrary slots, present or not.
    """
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "modify", "delete"]),
                st.integers(min_value=0, max_value=29),
                st.one_of(
                    st.none(),
                    st.floats(
                        min_value=-1e6, max_value=1e6, allow_nan=False, width=32
                    ),
                ),
                st.sampled_from(["a", "b", "c", None]),
            ),
            min_size=1,
            max_size=30,
        )
    )


@pytest.mark.slow
@settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(workload=workloads())
def test_random_dml_keeps_columnar_row_parity(workload):
    """Interleaved DML: after every write both paths return identical bytes."""
    columnar, row = build_engine(), build_engine(columnar=False)
    live = set()
    for engine in (columnar, row):
        seed(engine)
    live.update(f"i{i}" for i in range(12))
    statements = (
        GROUPED,
        "SELECT COUNT(*), COUNT(item.val), SUM(item.val) FROM item "
        "GROUP BY item.grp;",
        GLOBAL,
    )
    for op, slot, value, group in workload:
        identifier = f"h{slot}"
        if op == "delete":
            if identifier not in live:
                continue
            live.discard(identifier)
            for engine in (columnar, row):
                engine.delete_atom("item", identifier)
        else:
            live.add(identifier)
            values = {"name": f"H{slot}"}
            if value is not None:
                values["val"] = value
            if group is not None:
                values["grp"] = group
            for engine in (columnar, row):
                engine.store_atom("item", identifier=identifier, **values)
        for statement in statements:
            assert fingerprint(columnar.query(statement)) == fingerprint(
                row.query(statement)
            ), (op, slot, statement)
    # A pinned snapshot of the final state agrees too.
    col_pin, row_pin = columnar.snapshot_at(), row.snapshot_at()
    assert fingerprint(col_pin.query(GROUPED)) == fingerprint(row_pin.query(GROUPED))
