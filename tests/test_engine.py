"""Unit tests for the streaming plan pipeline: logical IR, physical operators,
executor, EXPLAIN, and the PrimaEngine routing."""

import itertools

import pytest

from repro import attr
from repro.core.molecule import MoleculeTypeDescription
from repro.core.recursion import RecursiveDescription
from repro.engine import (
    DefinePlan,
    Difference,
    ExecutionContext,
    Executor,
    IndexPool,
    Intersection,
    MoleculeScan,
    MoleculeSource,
    Project,
    ProjectPlan,
    RecursivePlan,
    Restrict,
    RestrictPlan,
    SetOpPlan,
    Union,
    canonical_structure,
    compile_plan,
    describe_plan,
    plan_name,
    run_plan,
)
from repro.exceptions import MoleculeGraphError, UnionCompatibilityError
from repro.mql import execute, parse
from repro.mql.ast_nodes import ExplainStatement
from repro.mql.translator import to_logical_plan
from repro.storage import PrimaEngine


@pytest.fixture()
def state_area_desc():
    return MoleculeTypeDescription(["state", "area"], [("state-area", "state", "area")])


class TestCompileAndRun:
    def test_scan_yields_one_molecule_per_root(self, geo_db, mt_state_desc):
        result = run_plan(geo_db, DefinePlan("mt_state", mt_state_desc))
        assert len(result) == 10
        assert result.molecule_type.name == "mt_state"
        assert result.counters.molecules_derived == 10

    def test_root_filter_skips_derivation(self, geo_db, mt_state_desc):
        filtered = run_plan(
            geo_db, DefinePlan("big", mt_state_desc, attr("hectare", "state") > 800)
        )
        unfiltered = run_plan(geo_db, DefinePlan("all", mt_state_desc))
        assert len(filtered) == 4
        assert filtered.counters.molecules_derived < unfiltered.counters.molecules_derived
        assert filtered.counters.atoms_touched < unfiltered.counters.atoms_touched

    def test_restrict_and_project_compose(self, geo_db, mt_state_desc):
        plan = ProjectPlan(
            RestrictPlan(DefinePlan("mt", mt_state_desc), attr("hectare", "state") > 800),
            ("state", "area"),
        )
        result = run_plan(geo_db, plan)
        assert len(result) == 4
        assert all(len(m) == 2 for m in result)
        assert plan_name(plan) == "mt"

    def test_set_operations_stream(self, geo_db, state_area_desc):
        big = RestrictPlan(DefinePlan("a", state_area_desc), attr("hectare", "state") > 800)
        sp = RestrictPlan(DefinePlan("b", state_area_desc), attr("code", "state") == "SP")
        assert len(run_plan(geo_db, SetOpPlan("UNION", big, sp))) == 5
        assert len(run_plan(geo_db, SetOpPlan("DIFFERENCE", big, sp))) == 4
        assert len(run_plan(geo_db, SetOpPlan("INTERSECT", big, big))) == 4

    def test_incompatible_union_rejected(self, geo_db, mt_state_desc, state_area_desc):
        plan = SetOpPlan(
            "UNION", DefinePlan("a", mt_state_desc), DefinePlan("b", state_area_desc)
        )
        with pytest.raises(UnionCompatibilityError):
            run_plan(geo_db, plan)

    def test_recursive_plan(self):
        from repro.datasets.bill_of_materials import build_bill_of_materials

        bom = build_bill_of_materials(depth=3, fan_out=2)
        plan = RecursivePlan(
            "explosion",
            RecursiveDescription("part", "composition", "down"),
            attr("level", "part") == 0,
        )
        result = run_plan(bom, plan)
        assert len(result) == 1
        assert len(result.molecule_type.occurrence[0]) == 15

    def test_unknown_projection_rejected(self, geo_db, state_area_desc):
        plan = ProjectPlan(DefinePlan("mt", state_area_desc), ("state", "river"))
        with pytest.raises(MoleculeGraphError):
            run_plan(geo_db, plan)

    def test_describe_plan_renders_all_nodes(self, state_area_desc):
        plan = SetOpPlan(
            "UNION",
            ProjectPlan(
                RestrictPlan(DefinePlan("a", state_area_desc), attr("hectare", "state") > 0),
                ("state", "area"),
            ),
            RecursivePlan("r", RecursiveDescription("part", "composition", "down")),
        )
        text = describe_plan(plan)
        for symbol in ("Ω", "Π", "Σ", "α", "α_rec"):
            assert symbol in text


class TestStreaming:
    def test_restrict_pulls_lazily(self, geo_db, state_area_desc):
        """The pipeline is pull-based: taking one result derives few molecules."""
        executor = Executor(geo_db)
        ctx = executor.context()
        stream = executor.stream(
            RestrictPlan(DefinePlan("mt", state_area_desc), attr("hectare", "state") > 0), ctx
        )
        next(stream)
        assert ctx.counters.molecules_derived == 1
        assert ctx.counters.molecules_derived < len(geo_db.atyp("state"))

    def test_difference_materializes_only_right_side(self, geo_db, state_area_desc):
        ctx = ExecutionContext(geo_db)
        left = MoleculeScan("l", state_area_desc)
        right = Restrict(MoleculeScan("r", state_area_desc), attr("hectare", "state") > 800)
        stream = Difference(left, right).execute(ctx)
        first = next(stream)
        # The right side (10 molecules) is materialized; the left side streams
        # only up to the first surviving molecule instead of all 10.
        assert 10 < ctx.counters.molecules_derived < 20
        assert first.root_atom["hectare"] <= 800


class TestIndexedScan:
    def test_equality_root_filter_uses_index_pool(self, geo_db):
        description = MoleculeTypeDescription(
            ["point", "edge"], [("edge-point", "point", "edge")]
        )
        plan = DefinePlan("pn", description, attr("name", "point") == "pn")
        executor = Executor(geo_db, indexes=IndexPool(geo_db))  # immutable-db caller
        result = executor.run(plan)
        assert len(result) == 1
        assert result.counters.index_lookups == 1
        # The transient build is charged, and only the matching root atom is
        # tested against the filter afterwards.
        assert result.counters.atoms_indexed == len(geo_db.atyp("point"))
        assert result.counters.restrictions_evaluated == 1
        # A second run on the same executor reuses the cached index.
        again = executor.run(plan)
        assert again.counters.atoms_indexed == 0

    def test_default_executor_falls_back_to_scan(self, geo_db):
        """Ephemeral executors must not cache indexes over a mutable database."""
        description = MoleculeTypeDescription(
            ["point", "edge"], [("edge-point", "point", "edge")]
        )
        plan = DefinePlan("pn", description, attr("name", "point") == "pn")
        result = run_plan(geo_db, plan)
        assert len(result) == 1
        assert result.counters.index_lookups == 0
        assert result.counters.restrictions_evaluated == len(geo_db.atyp("point"))

    def test_reused_interpreter_sees_database_mutations(self, geo_db):
        """A reused MQLInterpreter over a live database stays consistent."""
        from repro.core.atom import Atom
        from repro.mql import MQLInterpreter

        interpreter = MQLInterpreter(geo_db)
        first = interpreter.execute("SELECT ALL FROM state-area WHERE state.code = 'SP';")
        assert len(first) == 1
        geo_db.atyp("state").add(Atom("state", {"name": "Other SP", "code": "SP", "hectare": 1}))
        second = interpreter.execute("SELECT ALL FROM state-area WHERE state.code = 'SP';")
        assert len(second) == 2


class TestMQLPipeline:
    def test_every_statement_is_optimized_by_default(self, geo_db):
        result = execute(
            geo_db, "SELECT state, area FROM mt_state(state-area-edge-point) WHERE state.hectare > 800;"
        )
        assert result.plan_choice is not None
        assert "push_down_restriction" in result.plan_choice.applied_rules
        assert len(result) == 4

    def test_explain_statement_parses(self):
        ast = parse("EXPLAIN SELECT ALL FROM state-area;")
        assert isinstance(ast, ExplainStatement)

    def test_explain_reports_plans_without_executing(self, geo_db):
        result = execute(
            geo_db,
            "EXPLAIN SELECT state, area FROM mt_state(state-area-edge-point) "
            "WHERE state.hectare > 800;",
        )
        assert len(result) == 0
        assert result.explanation is not None
        assert "original plan" in result.explanation
        assert "optimized plan" in result.explanation
        assert "push_down_restriction" in result.explanation

    def test_explain_result_carries_output_schema(self, geo_db):
        """EXPLAIN's (empty) molecule type has the post-projection structure."""
        explained = execute(
            geo_db, "EXPLAIN SELECT state, area FROM mt_state(state-area-edge-point);"
        )
        executed = execute(
            geo_db, "SELECT state, area FROM mt_state(state-area-edge-point);"
        )
        assert set(explained.molecule_type.description.atom_type_names) == set(
            executed.molecule_type.description.atom_type_names
        ) == {"state", "area"}

    def test_stream_of_incompatible_union_raises_eagerly(self, geo_db, state_area_desc, mt_state_desc):
        operator = Union(
            MoleculeScan("a", mt_state_desc), MoleculeScan("b", state_area_desc)
        )
        with pytest.raises(UnionCompatibilityError):
            operator.execute(ExecutionContext(geo_db))  # before any pull

    def test_to_logical_plan_is_literal(self, geo_db):
        ast = parse("SELECT state, area FROM mt_state(state-area-edge-point) WHERE hectare > 1;")
        plan = to_logical_plan(geo_db, ast)
        assert isinstance(plan, ProjectPlan)
        assert isinstance(plan.child, RestrictPlan)
        assert isinstance(plan.child.child, DefinePlan)
        assert plan.child.child.root_filter is None

    def test_canonical_structure_ignores_propagation_names(self):
        plain = MoleculeTypeDescription(["state", "area"], [("state-area", "state", "area")])
        renamed = MoleculeTypeDescription(
            ["state@mt$1", "area@mt$1"],
            [("state-area~mt$1", "state@mt$1", "area@mt$1")],
        )
        assert canonical_structure(plain) == canonical_structure(renamed)


class TestPrimaEngineRouting:
    @pytest.fixture()
    def prima(self, geo_db):
        return PrimaEngine.from_database(geo_db)

    def test_query_runs_through_planner(self, prima):
        result = prima.query("SELECT ALL FROM state-area WHERE state.hectare > 800;")
        assert len(result) == 4
        assert result.plan_choice is not None

    def test_snapshot_pool_backs_pushed_down_filters(self, prima):
        """The engine's snapshot-bound pool answers equality filters via index."""
        result = prima.query("SELECT ALL FROM state-area WHERE state.code = 'SP';")
        assert len(result) == 1
        assert result.counters.index_lookups == 1
        # The same cached interpreter reuses the built index on the next query.
        again = prima.query("SELECT ALL FROM state-area WHERE state.code = 'MG';")
        assert again.counters.atoms_indexed == 0

    def test_interpreter_cache_invalidated_on_write(self, prima):
        before = prima.query("SELECT ALL FROM state-area;")
        prima.store_atom("state", name="Acre", code="AC", hectare=1600)
        prima.store_atom("area", area_id="ac-area", kind="state")
        prima.connect(
            "state-area",
            prima.lookup("state", "code", "AC")[0],
            prima.lookup("area", "area_id", "ac-area")[0],
        )
        after = prima.query("SELECT ALL FROM state-area;")
        assert len(after) == len(before) + 1

    def test_explain_and_escape_hatch(self, prima):
        choice = prima.plan("SELECT state, area FROM mt_state(state-area-edge-point);")
        assert "α" in choice.explain()
        literal = prima.query("SELECT ALL FROM state-area;", optimize=False)
        assert len(literal) == 10

    def test_held_interpreter_sees_writes_coherently(self, prima):
        """A held interpreter observes writes: one coherent, maintained view.

        Incremental cache maintenance folds every write into the snapshot,
        the hash indexes and the atom network in place, so a held
        interpreter and a fresh query answer identically — and the index
        pool's generation proves it kept up with the write stream.  (True
        snapshot isolation for held readers is the MVCC follow-on tracked in
        the ROADMAP.)
        """
        prima.create_index("state", "code")
        held = prima.interpreter()
        before = held.execute("SELECT ALL FROM state-area WHERE state.code = 'SP';")
        assert len(before) == 1
        sp = prima.lookup("state", "code", "SP")[0]
        prima.store_atom("state", identifier=sp.identifier, name=sp["name"], code="XX",
                         hectare=sp["hectare"])
        stale = held.execute("SELECT ALL FROM state-area WHERE state.code = 'SP';")
        assert len(stale) == 0
        renamed = held.execute("SELECT ALL FROM state-area WHERE state.code = 'XX';")
        assert len(renamed) == 1
        fresh = prima.query("SELECT ALL FROM state-area WHERE state.code = 'SP';")
        assert len(fresh) == 0
        report = prima.maintenance_statistics()
        assert report["index_generation"] == report["generation"]
