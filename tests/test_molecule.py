"""Unit tests for molecules, molecule-type descriptions and molecule types (Definitions 5-7)."""

import pytest

from repro.core.atom import Atom
from repro.core.graph import DirectedLink
from repro.core.link import Link
from repro.core.molecule import Molecule, MoleculeType, MoleculeTypeDescription
from repro.exceptions import MoleculeGraphError, SchemaError


@pytest.fixture()
def author_desc():
    return MoleculeTypeDescription(
        ["author", "book", "chapter"],
        [("wrote", "author", "book"), ("contains", "book", "chapter")],
    )


def make_molecule():
    author = Atom("author", {"name": "Codd"}, identifier="a1")
    book = Atom("book", {"title": "Relational"}, identifier="b1")
    chapter = Atom("chapter", {"title": "Normal forms"}, identifier="c1")
    links = [Link("wrote", "a1", "b1"), Link("contains", "b1", "c1")]
    description = MoleculeTypeDescription(
        ["author", "book", "chapter"],
        [("wrote", "author", "book"), ("contains", "book", "chapter")],
    )
    return Molecule(author, [author, book, chapter], links, description), author, book, chapter


class TestMoleculeTypeDescription:
    def test_root_and_leaves(self, author_desc):
        assert author_desc.root == "author"
        assert author_desc.leaves == ("chapter",)

    def test_children_and_parents(self, author_desc):
        assert [dl.target for dl in author_desc.children_of("author")] == ["book"]
        assert [dl.source for dl in author_desc.parents_of("chapter")] == ["book"]

    def test_traversal_order(self, author_desc):
        order = author_desc.traversal_order()
        assert order.index("author") < order.index("book") < order.index("chapter")

    def test_link_type_names(self, author_desc):
        assert author_desc.link_type_names() == ("wrote", "contains")

    def test_invalid_graph_rejected(self):
        with pytest.raises(MoleculeGraphError):
            MoleculeTypeDescription(["a", "b"], [])  # not coherent

    def test_accepts_directed_link_objects(self):
        description = MoleculeTypeDescription(["a", "b"], [DirectedLink("l", "a", "b")])
        assert description.directed_links[0].link_type_name == "l"

    def test_projected_keeps_root(self, author_desc):
        projected = author_desc.projected(["author", "book"])
        assert projected.atom_type_names == ("author", "book")
        assert len(projected.directed_links) == 1

    def test_projected_must_keep_root(self, author_desc):
        with pytest.raises(MoleculeGraphError):
            author_desc.projected(["book", "chapter"])

    def test_projected_unknown_type_rejected(self, author_desc):
        with pytest.raises(MoleculeGraphError):
            author_desc.projected(["author", "publisher"])

    def test_renamed(self, author_desc):
        renamed = author_desc.renamed({"author": "author@x"}, {"wrote": "wrote~x"})
        assert renamed.root == "author@x"
        assert renamed.directed_links[0].link_type_name == "wrote~x"
        # Same graph shape.
        assert len(renamed.directed_links) == len(author_desc.directed_links)

    def test_equality_order_insensitive(self):
        a = MoleculeTypeDescription(["x", "y"], [("l", "x", "y")])
        b = MoleculeTypeDescription(["y", "x"][::-1], [("l", "x", "y")])
        assert a == b and hash(a) == hash(b)


class TestMolecule:
    def test_component_access(self):
        molecule, author, book, chapter = make_molecule()
        assert len(molecule) == 3
        assert molecule.root_atom == author
        assert set(molecule.atom_identifiers) == {"a1", "b1", "c1"}
        assert molecule.atoms_of_type("book") == (book,)
        assert molecule.atoms_of_type(None) == molecule.atoms
        assert molecule.get("c1") == chapter
        assert molecule.get("missing") is None

    def test_atoms_of_type_with_decorated_names(self):
        author = Atom("author@mt$1", {"name": "Codd"}, identifier="a1")
        molecule = Molecule(author, [author], [])
        assert molecule.atoms_of_type("author") == (author,)
        assert molecule.atoms_of_type("author@other$2") == (author,)

    def test_contains(self):
        molecule, author, book, _ = make_molecule()
        assert author in molecule
        assert "b1" in molecule
        assert Link("wrote", "a1", "b1") in molecule
        assert Atom("author", {}, identifier="zz") not in molecule

    def test_root_always_included(self):
        author = Atom("author", {"name": "x"}, identifier="a9")
        molecule = Molecule(author, [], [])
        assert len(molecule) == 1

    def test_shares_atoms_with(self):
        molecule, author, book, chapter = make_molecule()
        other_author = Atom("author", {"name": "Ullman"}, identifier="a2")
        other = Molecule(other_author, [other_author, book], [Link("wrote", "a2", "b1")])
        assert molecule.shares_atoms_with(other) == frozenset({"b1"})

    def test_projected(self):
        molecule, author, book, chapter = make_molecule()
        projected = molecule.projected(
            molecule.description.projected(["author", "book"])
        )
        assert set(projected.atom_identifiers) == {"a1", "b1"}
        assert all(link.link_type_name == "wrote" for link in projected.links)

    def test_value_signature_equality(self):
        first, *_ = make_molecule()
        second, *_ = make_molecule()
        assert first == second
        assert hash(first) == hash(second)

    def test_to_nested_dict_follows_structure(self):
        molecule, *_ = make_molecule()
        nested = molecule.to_nested_dict()
        assert nested["name"] == "Codd"
        assert nested["book"][0]["title"] == "Relational"
        assert nested["book"][0]["chapter"][0]["title"] == "Normal forms"

    def test_to_nested_dict_without_description(self):
        author = Atom("author", {"name": "x"}, identifier="a1")
        molecule = Molecule(author, [author], [])
        nested = molecule.to_nested_dict()
        assert nested["root"]["name"] == "x"


class TestMoleculeType:
    def test_accessors(self, author_desc):
        molecule, *_ = make_molecule()
        molecule_type = MoleculeType("oeuvre", author_desc, [molecule])
        assert molecule_type.name == "oeuvre"
        assert molecule_type.root_type_name == "author"
        assert len(molecule_type) == 1
        assert molecule in molecule_type

    def test_invalid_name_rejected(self, author_desc):
        with pytest.raises(SchemaError):
            MoleculeType("", author_desc)

    def test_find_and_molecules_rooted_at(self, author_desc):
        molecule, *_ = make_molecule()
        molecule_type = MoleculeType("oeuvre", author_desc, [molecule])
        assert molecule_type.find(name="Codd") == (molecule,)
        assert molecule_type.find(name="nobody") == ()
        assert molecule_type.molecules_rooted_at("a1") == (molecule,)

    def test_shared_atoms_and_counts(self, author_desc):
        molecule, author, book, chapter = make_molecule()
        other_author = Atom("author", {"name": "Ullman"}, identifier="a2")
        other = Molecule(other_author, [other_author, book], [Link("wrote", "a2", "b1")], author_desc)
        molecule_type = MoleculeType("oeuvre", author_desc, [molecule, other])
        assert molecule_type.shared_atoms() == {"b1": 2}
        assert molecule_type.atom_count() == 5
        assert molecule_type.distinct_atom_count() == 4

    def test_equality(self, author_desc):
        molecule, *_ = make_molecule()
        a = MoleculeType("x", author_desc, [molecule])
        b = MoleculeType("x", author_desc, [molecule])
        assert a == b
