"""Reader stability: every E-MQL example query is byte-stable under a pin.

The satellite contract of the MVCC change: pin a snapshot, run every query
the ``bench_mql_examples.py`` benchmark exercises (the paper's two worked
statements plus the three set-operation statements), fire a burst of
committed DML through the engine head, re-run every query against the pin,
and assert byte-identical results — while a fresh head read observes the
writers' state.
"""

import json

import pytest

from repro.datasets.geography import load_geography
from repro.storage.engine import PrimaEngine

#: Every MQL statement bench_mql_examples.py executes (kept in sync by the
#: structural asserts in test_statement_list_matches_benchmark below).
BENCH_MQL_STATEMENTS = (
    # Chapter 4, statement 1 (E-MQL).
    "SELECT ALL FROM mt_state (state - area - edge - point);",
    # Chapter 4, statement 2 — the symmetric point-neighborhood query.
    "SELECT ALL FROM point - edge - (area - state, net - river) WHERE point.name = 'pn';",
    # The three set-operation statements of the benchmark.
    "SELECT ALL FROM mt_state (state - area - edge - point) WHERE state.hectare > 800 "
    "UNION "
    "SELECT ALL FROM mt_state (state - area - edge - point) WHERE state.code = 'SP';",
    "SELECT ALL FROM mt_state (state-area-edge-point) "
    "DIFFERENCE "
    "SELECT ALL FROM mt_state (state-area-edge-point) WHERE state.hectare > 800;",
    "SELECT ALL FROM mt_state (state-area-edge-point) WHERE state.hectare > 800 "
    "INTERSECT "
    "SELECT ALL FROM mt_state (state-area-edge-point) WHERE state.code = 'MG';",
)

#: Committed DML fired between the two pinned read passes.
DML_BURST = (
    "INSERT state - area VALUES {name: 'Tocantins', code: 'TO', hectare: 850, "
    "area: {area_id: 'a_to', kind: 'state-border'}};",
    "MODIFY state FROM state - area SET hectare = 1 WHERE state.code = 'MG';",
    "MODIFY point FROM point - edge SET name = 'renamed' WHERE point.name = 'p2';",
    "DELETE FROM state - area - edge - point WHERE state.code = 'RJ';",
)


def fingerprint(result) -> str:
    return json.dumps(
        sorted(json.dumps(d, sort_keys=True, default=str) for d in result.to_dicts())
    )


@pytest.fixture()
def engine() -> PrimaEngine:
    prima = PrimaEngine.from_database(load_geography())
    prima.query(BENCH_MQL_STATEMENTS[0])  # warm snapshot / network / interpreter
    return prima


def test_every_bench_query_is_stable_around_a_dml_burst(engine):
    handle = engine.snapshot_at()
    first_pass = [fingerprint(handle.query(stmt)) for stmt in BENCH_MQL_STATEMENTS]
    for statement in DML_BURST:
        engine.query(statement)
    second_pass = [fingerprint(handle.query(stmt)) for stmt in BENCH_MQL_STATEMENTS]
    assert first_pass == second_pass, "pinned reads must be byte-identical"
    # A fresh head read observes the burst: MG dropped out of the >800 band,
    # RJ is gone, TO arrived.
    head = [fingerprint(engine.query(stmt)) for stmt in BENCH_MQL_STATEMENTS]
    assert head != first_pass
    handle.release()
    assert engine.maintenance_report()["versions_live"] == 0


def test_pinned_counts_match_the_benchmark_claims(engine):
    """The pinned results reproduce the benchmark's documented cardinalities
    even while the head mutates (10 mt_state molecules, 1 neighborhood)."""
    with engine.snapshot_at() as handle:
        for statement in DML_BURST:
            engine.query(statement)
        assert len(handle.query(BENCH_MQL_STATEMENTS[0])) == 10
        neighborhood = handle.query(BENCH_MQL_STATEMENTS[1])
        assert len(neighborhood) == 1
        states = sorted(
            atom["code"] for atom in neighborhood.molecules[0].atoms_of_type("state")
        )
        assert states == ["GO", "MG", "MS", "SP"]
        assert len(handle.query(BENCH_MQL_STATEMENTS[4])) == 1  # INTERSECT keeps MG
    # Post-release head: the DML really happened.
    assert len(engine.query(BENCH_MQL_STATEMENTS[0])) == 10  # -RJ +TO
    assert len(engine.query(BENCH_MQL_STATEMENTS[4])) == 0  # MG left the band


def test_statement_list_matches_benchmark():
    """Keep the local statement list honest against bench_mql_examples.py."""
    from pathlib import Path

    source = (
        Path(__file__).resolve().parent.parent / "benchmarks" / "bench_mql_examples.py"
    ).read_text(encoding="utf-8")
    for fragment in (
        "SELECT ALL FROM mt_state (state - area - edge - point);",
        "WHERE point.name = 'pn'",
        "UNION",
        "DIFFERENCE",
        "INTERSECT",
    ):
        assert fragment in source
