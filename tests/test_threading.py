"""Thread races over the MVCC substrate: pins vs. GC, commits, readers, WAL.

Real-thread counterparts of the cooperative MVCC tests: every scenario here
puts actual ``threading.Thread`` workers behind a barrier so the racy window
is hit deliberately, not by luck.

* concurrent pin/release storms against garbage-collection truncation keep
  the pin registry exact (over-release is an error, never an under-count);
* two writer threads racing to commit the same write-set resolve to exactly
  one winner — the loser gets :class:`TransactionConflictError` and leaves
  no partial state;
* reader threads hammering one pinned snapshot return byte-identical results
  throughout a concurrent DML burst (and ``parallel_query`` equals serial
  execution on the same generation);
* a multi-threaded WAL append hammer under the ``batch`` group-commit policy
  produces no torn or interleaved records.

Iteration counts scale with the ``REPRO_STRESS`` environment knob (a
multiplier, default 1) — CI's stress step runs the same suite with a higher
value.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Callable, List

import pytest

from repro.core.versions import VersioningState
from repro.exceptions import (
    StorageError,
    TransactionConflictError,
    TransactionError,
)
from repro.manipulation.transactions import Transaction
from repro.storage import PrimaEngine, WriteAheadLog, read_wal
from repro.storage.wal import FSYNC_BATCH

#: Stress multiplier: CI's stress job runs e.g. ``REPRO_STRESS=10``.
STRESS = max(1, int(os.environ.get("REPRO_STRESS", "1")))


def run_threads(workers: "List[Callable[[], None]]") -> None:
    """Run *workers* on real threads; re-raise the first worker exception."""
    errors: List[BaseException] = []
    lock = threading.Lock()

    def wrap(worker: Callable[[], None]) -> Callable[[], None]:
        def runner() -> None:
            try:
                worker()
            except BaseException as exc:  # noqa: BLE001 - reported to pytest
                with lock:
                    errors.append(exc)

        return runner

    threads = [threading.Thread(target=wrap(worker)) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


def small_engine() -> PrimaEngine:
    """A tiny two-type engine (states and areas) with warm caches."""
    engine = PrimaEngine("threadbox")
    engine.create_atom_type(
        "state", {"name": "string", "code": "string", "hectare": "integer"}
    )
    engine.create_atom_type("area", {"area_id": "string"})
    engine.create_link_type("state-area", "state", "area")
    for index in range(6):
        engine.store_atom(
            "state",
            identifier=f"st{index}",
            name=f"State{index}",
            code=f"S{index}",
            hectare=100 + index,
        )
        engine.store_atom("area", identifier=f"ar{index}", area_id=f"a{index}")
        engine.connect("state-area", f"st{index}", f"ar{index}")
    engine.query("SELECT ALL FROM state - area;")  # warm snapshot/interpreter
    return engine


def fingerprint(result) -> str:
    """Byte-stable rendering of a query result (order-independent)."""
    return json.dumps(
        sorted(json.dumps(d, sort_keys=True, default=str) for d in result.to_dicts())
    )


READ = "SELECT ALL FROM state - area;"


def dml_round(engine: PrimaEngine, index: int) -> None:
    code = f"T{index:05d}"
    engine.query(
        f"INSERT state VALUES {{name: 'Burst', code: '{code}', hectare: {index}}};"
    )
    engine.query(
        f"MODIFY state FROM state SET hectare = {index + 1} WHERE state.code = '{code}';"
    )
    engine.query(f"DELETE FROM state WHERE state.code = '{code}';")


# ------------------------------------------------------ pin registry vs. GC


class TestPinReleaseRaces:
    def test_barrier_pin_release_storm_vs_gc_truncation(self):
        """Pin/read/release storms against DML + GC keep the registry exact."""
        engine = small_engine()
        reader_count = 4
        rounds = 8 * STRESS
        barrier = threading.Barrier(reader_count + 1)

        def reader() -> None:
            barrier.wait()
            for _ in range(rounds):
                with engine.snapshot_at() as handle:
                    assert handle.query(READ).molecules is not None

        def writer() -> None:
            barrier.wait()
            for index in range(rounds):
                dml_round(engine, index)
                # Explicit GC interleaved with the readers' release-GC.
                engine.collect_versions()

        run_threads([reader] * reader_count + [writer])
        report = engine.maintenance_report()
        assert report["pins_active"] == 0
        assert report["oldest_pinned_generation"] is None
        engine.collect_versions()
        assert engine.maintenance_report()["versions_live"] == 0

    def test_racing_releases_of_one_handle_release_exactly_once(self):
        """N threads racing ``release()`` on one handle unpin exactly once."""
        engine = small_engine()
        for _ in range(4 * STRESS):
            keeper = engine.snapshot_at()  # a second pin that must survive
            handle = engine.snapshot_at()
            barrier = threading.Barrier(4)

            def release() -> None:
                barrier.wait()
                handle.release()  # noqa: B023 - rebound each round

            run_threads([release] * 4)
            assert engine.maintenance_report()["pins_active"] == 1
            keeper.release()
            assert engine.maintenance_report()["pins_active"] == 0

    def test_registry_over_release_is_an_error_under_threads(self):
        """The raw registry refuses the (N+1)-th release instead of silently
        stealing a pin another thread still holds."""
        state = VersioningState()
        state.tick()
        generation = state.pin()
        state.pin(generation)
        failures = []
        barrier = threading.Barrier(3)

        def release() -> None:
            barrier.wait()
            try:
                state.release(generation)
            except StorageError:
                failures.append(1)

        run_threads([release] * 3)
        assert len(failures) == 1  # two pins, three releases: one refused
        assert state.pins_active == 0


# ----------------------------------------------------------- racing writers


class TestWriterRaces:
    def test_two_writers_racing_same_write_set_exactly_one_wins(self):
        """Two real-thread writers on one conflict key: one commit, one
        :class:`TransactionConflictError`, loser fully rolled back."""
        engine = small_engine()
        database = engine.to_database()
        for round_index in range(6 * STRESS):
            barrier = threading.Barrier(2)
            outcomes: List[str] = []
            lock = threading.Lock()

            def contender(value: int) -> None:
                txn = Transaction(database)
                txn.begin()
                barrier.wait()
                try:
                    txn.modify_atom("state", "st1", hectare=value)
                    txn.commit()
                except TransactionConflictError:
                    if txn.is_active:
                        txn.rollback()
                    with lock:
                        outcomes.append("conflict")
                else:
                    with lock:
                        outcomes.append(f"won:{value}")

            base = 1000 * (round_index + 1)
            run_threads(
                [lambda: contender(base + 1), lambda: contender(base + 2)]
            )
            winners = [o for o in outcomes if o.startswith("won")]
            assert len(winners) == 1, outcomes
            assert outcomes.count("conflict") == 1, outcomes
            # The committed value is the winner's; the loser left no trace.
            winner_value = int(winners[0].split(":", 1)[1])
            assert engine.get_atom("state", "st1").get("hectare") == winner_value
            assert database.atyp("state").get("st1").get("hectare") == winner_value

    def test_disjoint_writers_all_commit(self):
        """Writers on disjoint keys never conflict and all publish."""
        engine = small_engine()
        database = engine.to_database()
        writer_count = 4
        barrier = threading.Barrier(writer_count)

        def writer(slot: int) -> None:
            txn = Transaction(database)
            txn.begin()
            barrier.wait()
            txn.modify_atom("state", f"st{slot}", hectare=7000 + slot)
            txn.commit()

        run_threads([lambda s=slot: writer(s) for slot in range(writer_count)])
        for slot in range(writer_count):
            assert engine.get_atom("state", f"st{slot}").get("hectare") == 7000 + slot


# --------------------------------------------------------- parallel readers


class TestParallelReaders:
    def test_reader_threads_generation_stable_during_dml_burst(self):
        """N reader threads over one pinned snapshot return byte-identical
        results while a writer thread commits a DML burst."""
        engine = small_engine()
        handle = engine.snapshot_at()
        reference = fingerprint(handle.query(READ))
        reader_count = 4
        reads_each = 6 * STRESS
        barrier = threading.Barrier(reader_count + 1)

        def reader() -> None:
            barrier.wait()
            for _ in range(reads_each):
                assert fingerprint(handle.query(READ)) == reference

        def writer() -> None:
            barrier.wait()
            for index in range(6 * STRESS):
                dml_round(engine, index)

        run_threads([reader] * reader_count + [writer])
        # The head moved on; the pinned view did not.
        assert fingerprint(handle.query(READ)) == reference
        handle.release()
        assert engine.maintenance_report()["pins_active"] == 0

    def test_parallel_query_byte_identical_vs_serial(self):
        """``parallel_query`` equals a serial run at the same generation,
        with a concurrent writer mutating the head in between.

        A keeper pin holds the generation's history alive across the whole
        comparison — without any pin, an unpinned stretch would let GC
        truncate the chains an after-the-fact pin would need.
        """
        engine = small_engine()
        statements = [READ, "SELECT ALL FROM state;", "SELECT ALL FROM area;"] * 4
        keeper = engine.snapshot_at()
        generation = keeper.generation
        serial = [
            fingerprint(r)
            for r in engine.parallel_query(statements, threads=1, generation=generation)
        ]
        stop = threading.Event()

        def churn() -> None:
            index = 0
            while not stop.is_set():
                dml_round(engine, index)
                index += 1

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            for threads in (2, 4):
                parallel = [
                    fingerprint(r)
                    for r in engine.parallel_query(
                        statements, threads=threads, generation=generation
                    )
                ]
                assert parallel == serial
        finally:
            stop.set()
            churner.join()
        keeper.release()

    def test_session_thread_affinity_enforced(self):
        """Session statements from a foreign thread fail with a clear error;
        pinned snapshot reads from that thread keep working."""
        engine = small_engine()
        handle = engine.snapshot_at()
        engine.query("BEGIN WORK;")
        engine.query(
            "MODIFY state FROM state SET hectare = 1 WHERE state.code = 'S0';"
        )
        caught: List[BaseException] = []
        snapshots: List[str] = []

        def foreign() -> None:
            try:
                engine.query(READ)
            except TransactionError as exc:
                caught.append(exc)
            snapshots.append(fingerprint(handle.query(READ)))

        run_threads([foreign])
        assert len(caught) == 1
        assert "thread" in str(caught[0])
        assert snapshots  # the pinned read went through
        engine.query("ROLLBACK WORK;")
        handle.release()
        assert engine.query(READ).molecules is not None  # session gone, head open


# ------------------------------------------------- structure-index churn


class TestStructureIndexChurn:
    def test_recursive_readers_stable_under_structure_churn(self):
        """Snapshot readers of an interval-accelerated recursion stay
        generation-stable while writers graft and prune the BOM, and the
        final head answer matches a fixpoint engine replaying the same
        final state."""
        engine = PrimaEngine("churnbox")
        engine.create_atom_type("part", {"part_no": "string"})
        engine.create_link_type("composition", "part", "part")
        for index in range(8):
            engine.store_atom("part", identifier=f"p{index}", part_no=f"P{index}")
        for parent, child in [(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (5, 6), (6, 7)]:
            engine.connect("composition", f"p{parent}", f"p{child}")
        engine.create_structure_index("part", "composition", "down")
        recursive = "SELECT ALL FROM RECURSIVE part [composition] DOWN;"
        engine.query(recursive)  # warm caches, build the encoding

        writer_count = 2
        reader_count = 2
        rounds = 8 * STRESS
        barrier = threading.Barrier(writer_count + reader_count)

        def writer(worker: int) -> Callable[[], None]:
            def work() -> None:
                barrier.wait()
                for round_no in range(rounds):
                    leaf = f"w{worker}r{round_no}"
                    engine.store_atom("part", identifier=leaf, part_no=leaf)
                    engine.connect("composition", f"p{round_no % 8}", leaf)
                    if round_no % 3 == 0:
                        engine.delete_atom("part", leaf)

            return work

        def reader() -> None:
            barrier.wait()
            for _ in range(rounds):
                handle = engine.snapshot_at()
                try:
                    first = fingerprint(handle.query(recursive))
                    second = fingerprint(handle.query(recursive))
                    assert first == second
                finally:
                    handle.release()

        run_threads([writer(w) for w in range(writer_count)] + [reader] * reader_count)

        # Replay the final store state into a fixpoint-only engine and
        # compare the head answers structurally.
        final = engine.to_database()
        baseline = PrimaEngine("churnbase")
        baseline.create_atom_type("part", {"part_no": "string"})
        baseline.create_link_type("composition", "part", "part")
        for atom in final.atyp("part"):
            baseline.store_atom("part", identifier=atom.identifier, part_no=atom.get("part_no"))
        for link in final.ltyp("composition"):
            first_id, second_id = link.given_order
            baseline.connect("composition", first_id, second_id)
        assert fingerprint(engine.query(recursive)) == fingerprint(
            baseline.query(recursive)
        )
        report = engine.maintenance_report()
        assert report["structure_indexes"] == 1
        assert report["structure_builds"] >= 1
        assert report["pins_active"] == 0


# ----------------------------------------------------------- WAL append race


class TestWalRaces:
    def test_append_hammer_no_torn_records_under_batch_policy(self, tmp_path):
        """Concurrent committers under group commit: every record on disk is
        whole, checksummed, and exactly the set the threads appended."""
        wal = WriteAheadLog(tmp_path / "wal.log", fsync=FSYNC_BATCH, group_commit=4)
        writer_count = 4
        appends_each = 25 * STRESS
        barrier = threading.Barrier(writer_count)

        def writer(slot: int) -> None:
            barrier.wait()
            for index in range(appends_each):
                payload = {
                    "e": "ai",
                    "t": "part",
                    "id": f"w{slot}-{index}",
                    "v": {"marker": "x" * (10 + (index % 40))},
                    "g": slot * 100000 + index,
                }
                wal.commit_events([payload])

        run_threads([lambda s=slot: writer(s) for slot in range(writer_count)])
        wal.close()
        scan = read_wal(tmp_path / "wal.log")
        assert not scan.torn_tail
        assert scan.discarded_bytes == 0
        assert len(scan.records) == writer_count * appends_each
        seen = {record["events"][0]["id"] for record in scan.records}
        assert len(seen) == writer_count * appends_each
        assert scan.valid_bytes == (tmp_path / "wal.log").stat().st_size

    def test_wal_counters_exact_after_concurrent_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log", fsync=FSYNC_BATCH, group_commit=8)
        barrier = threading.Barrier(3)

        def writer() -> None:
            barrier.wait()
            for index in range(20 * STRESS):
                wal.append_ddl({"op": "index", "type": "t", "attribute": f"a{index}"})

        run_threads([writer] * 3)
        assert wal.records_written == 60 * STRESS
        assert wal.lifetime_records == 60 * STRESS
        assert wal.bytes_written == wal.path.stat().st_size
        wal.close()


# ------------------------------------------------------ replication churn


class TestFollowerChurn:
    def test_follower_churn_under_write_burst(self, tmp_path):
        """Followers joining, catching up, querying, and detaching while
        writer threads burst DML: every catch-up lands on a consistent
        generation and a final catch-up reaches byte-parity with the head."""
        engine = PrimaEngine.open(tmp_path / "dir", fsync="off")
        engine.create_atom_type(
            "state", {"name": "string", "code": "string", "hectare": "integer"}
        )
        engine.create_atom_type("area", {"area_id": "string"})
        engine.create_link_type("state-area", "state", "area")
        for index in range(6):
            engine.store_atom(
                "state",
                identifier=f"st{index}",
                name=f"State{index}",
                code=f"S{index}",
                hectare=100 + index,
            )
            engine.store_atom("area", identifier=f"ar{index}", area_id=f"a{index}")
            engine.connect("state-area", f"st{index}", f"ar{index}")
        engine.checkpoint()
        hub = engine.replication_hub()
        writer_count = 2
        churner_count = 3
        rounds = 5 * STRESS
        barrier = threading.Barrier(writer_count + churner_count)

        def writer(slot: int) -> None:
            barrier.wait()
            for index in range(rounds):
                dml_round(engine, slot * 100000 + index)

        def churner(slot: int) -> None:
            barrier.wait()
            for index in range(rounds):
                follower = engine.create_follower(f"churn-{slot}-{index}")
                try:
                    hub.ship(follower)
                    result = follower.query("SELECT COUNT(state.name) FROM state;")
                    assert len(result.to_dicts()) == 1
                finally:
                    follower.close()

        run_threads(
            [lambda s=slot: writer(s) for slot in range(writer_count)]
            + [lambda s=slot: churner(s) for slot in range(churner_count)]
        )
        assert hub.followers() == []
        # A fresh follower after the storm catches up to exact parity.
        follower = engine.create_follower("final")
        hub.ship(follower)
        assert fingerprint(follower.query(READ)) == fingerprint(engine.query(READ))
        report = engine.maintenance_report()
        assert report["replication_followers_started"] == churner_count * rounds + 1
        assert report["replication_lag"] == 0
        engine.close()


# ------------------------------------------- WAL truncate counter regression


def test_wal_truncate_keeps_record_and_byte_counters_consistent(tmp_path):
    """Regression: ``truncate()`` used to reset ``bytes_written`` but not
    ``records_written``, so a post-CHECKPOINT report claimed records in an
    empty log.  Both now describe the current log; lifetime totals survive."""
    engine = PrimaEngine.open(tmp_path / "dir", fsync="always")
    engine.create_atom_type("part", {"part_no": "string", "cost": "integer"})
    engine.query("INSERT part VALUES {part_no: 'P1', cost: 10};")
    engine.query("INSERT part VALUES {part_no: 'P2', cost: 20};")
    before = engine.maintenance_report()
    assert before["wal_records"] > 0
    assert before["wal_bytes"] > 0
    assert before["wal_lifetime_records"] == before["wal_records"]
    engine.checkpoint()
    after = engine.maintenance_report()
    assert after["wal_bytes"] == 0
    assert after["wal_records"] == 0, "truncate must reset both current-log counters"
    assert after["wal_lifetime_records"] == before["wal_lifetime_records"]
    assert after["wal_lifetime_bytes"] == before["wal_lifetime_bytes"]
    # Post-checkpoint appends count from zero again, lifetime keeps growing.
    engine.query("INSERT part VALUES {part_no: 'P3', cost: 30};")
    final = engine.maintenance_report()
    assert final["wal_records"] == 1
    assert final["wal_lifetime_records"] == before["wal_lifetime_records"] + 1
    assert final["wal_lifetime_bytes"] > before["wal_lifetime_bytes"]
    engine.close()
