"""Unit tests for the atom-type algebra π, σ, ×, ω, δ with link inheritance (Definition 4, Theorem 1)."""

import pytest

from repro.core.atom_algebra import (
    AtomAlgebra,
    difference,
    intersection,
    product,
    project,
    restrict,
    union,
)
from repro.core.predicates import attr
from repro.exceptions import ProjectionError, RestrictionError, UnionCompatibilityError


class TestProjection:
    def test_projects_attributes_and_keeps_identity(self, tiny_db):
        result = project(tiny_db, "book", ["title"])
        assert result.atom_type.description.names == ("title",)
        assert len(result.atom_type) == 3
        assert set(result.atom_type.identifiers()) == {"b1", "b2", "b3"}

    def test_unknown_attribute_rejected(self, tiny_db):
        with pytest.raises(ProjectionError):
            project(tiny_db, "book", ["isbn"])

    def test_inherits_link_types(self, tiny_db):
        result = project(tiny_db, "book", ["title"])
        assert len(result.inherited_link_types) == 1
        inherited = result.inherited_link_types[0]
        assert inherited.name.startswith("wrote~")
        assert len(inherited) == 4

    def test_enlarges_database_without_mutation(self, tiny_db):
        result = project(tiny_db, "book", ["title"], name="titles")
        assert result.database.has_atom_type("titles")
        assert not tiny_db.has_atom_type("titles")
        assert len(tiny_db.atom_types) == 2

    def test_explicit_name_used(self, tiny_db):
        result = project(tiny_db, "book", ["title"], name="titles")
        assert result.atom_type.name == "titles"


class TestRestriction:
    def test_keeps_qualifying_atoms(self, tiny_db):
        result = restrict(tiny_db, "book", attr("year") > 1975)
        assert {a["title"] for a in result.atom_type} == {"Principles", "Survey"}

    def test_same_description(self, tiny_db):
        result = restrict(tiny_db, "book", attr("year") > 1975)
        assert result.atom_type.description == tiny_db.atyp("book").description

    def test_plain_callable_accepted(self, tiny_db):
        result = restrict(tiny_db, "book", lambda atom: atom["year"] == 1970)
        assert len(result.atom_type) == 1

    def test_non_formula_rejected(self, tiny_db):
        with pytest.raises(RestrictionError):
            restrict(tiny_db, "book", "year > 1975")

    def test_inherited_links_only_reference_surviving_atoms(self, tiny_db):
        result = restrict(tiny_db, "book", attr("year") > 1975)
        inherited = result.inherited_link_types[0]
        surviving = set(result.atom_type.identifiers())
        for link in inherited:
            assert link.identifiers & surviving

    def test_empty_result_is_valid(self, tiny_db):
        result = restrict(tiny_db, "book", attr("year") > 3000)
        assert len(result.atom_type) == 0
        assert len(result.inherited_link_types[0]) == 0
        assert result.database.is_valid()


class TestCartesianProduct:
    def test_size_and_description(self, tiny_db):
        result = product(tiny_db, "author", "book")
        assert len(result.atom_type) == 2 * 3
        assert set(result.atom_type.description.names) >= {"name", "country", "title", "year"}

    def test_composite_identity_and_provenance(self, tiny_db):
        result = product(tiny_db, "author", "book")
        for atom in result.atom_type:
            assert "&" in atom.identifier
            assert result.provenance[atom.identifier] == tuple(atom.identifier.split("&"))

    def test_clashing_attributes_prefixed(self, tiny_db):
        tiny_db.define_atom_type("publisher", {"name": "string"})
        tiny_db.insert_atom("publisher", identifier="p1", name="ACM")
        result = product(tiny_db, "author", "publisher")
        names = result.atom_type.description.names
        assert "name" in names and any("." in name for name in names)

    def test_inherits_links_from_both_operands(self, tiny_db):
        result = product(tiny_db, "author", "book")
        assert len(result.inherited_link_types) == 1  # both inherit 'wrote', deduplicated by name
        # The paper's border example: every link incident to either operand is
        # re-targeted at the composite atoms.
        inherited = result.inherited_link_types[0]
        assert len(inherited) > 0


class TestUnionAndDifference:
    def test_union_requires_identical_descriptions(self, tiny_db):
        with pytest.raises(UnionCompatibilityError):
            union(tiny_db, "author", "book")

    def test_union_of_restrictions(self, tiny_db):
        early = restrict(tiny_db, "book", attr("year") < 1980, name="early")
        late = restrict(early.database, "book", attr("year") >= 1980, name="late")
        combined = union(late.database, early.atom_type, late.atom_type)
        assert len(combined.atom_type) == 3

    def test_union_deduplicates_identifiers(self, tiny_db):
        result = union(tiny_db, "book", "book")
        assert len(result.atom_type) == 3

    def test_difference_by_identity(self, tiny_db):
        early = restrict(tiny_db, "book", attr("year") < 1980, name="early")
        result = difference(early.database, "book", early.atom_type)
        assert {a["title"] for a in result.atom_type} == {"Principles", "Survey"}

    def test_difference_requires_identical_descriptions(self, tiny_db):
        with pytest.raises(UnionCompatibilityError):
            difference(tiny_db, "author", "book")

    def test_difference_by_value_across_independent_types(self, tiny_db):
        tiny_db.define_atom_type("book2", {"title": "string", "year": "integer"})
        tiny_db.insert_atom("book2", identifier="other1", title="Survey", year=1985)
        result = difference(tiny_db, "book", "book2")
        assert {a["title"] for a in result.atom_type} == {"Relational Model", "Principles"}

    def test_intersection_is_double_difference(self, tiny_db):
        early = restrict(tiny_db, "book", attr("year") <= 1980, name="early")
        result = intersection(early.database, "book", early.atom_type)
        assert {a["title"] for a in result.atom_type} == {"Relational Model", "Principles"}


class TestFacade:
    def test_chained_operations_thread_the_database(self, tiny_db):
        algebra = AtomAlgebra(tiny_db)
        step1 = algebra.restrict("book", attr("year") > 1975, name="recent")
        step2 = algebra.project(step1.atom_type, ["title"], name="recent_titles")
        step3 = algebra.product("author", step2.atom_type)
        assert algebra.database.has_atom_type("recent")
        assert algebra.database.has_atom_type("recent_titles")
        assert len(step3.atom_type) == 2 * 2
        assert algebra.database.is_valid()

    def test_result_supports_tuple_unpacking(self, tiny_db):
        atom_type, links, database = project(tiny_db, "book", ["title"])
        assert atom_type.description.names == ("title",)
        assert database.has_atom_type(atom_type.name)

    def test_reflexive_link_inheritance(self):
        from repro.datasets.bill_of_materials import build_bill_of_materials

        bom = build_bill_of_materials(depth=2, fan_out=2)
        result = restrict(bom, "part", attr("level") <= 1)
        inherited = result.inherited_link_types[0]
        assert inherited.is_reflexive
        # Only links between surviving parts remain.
        surviving = set(result.atom_type.identifiers())
        for link in inherited:
            assert link.identifiers <= surviving
