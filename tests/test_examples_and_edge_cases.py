"""Smoke tests for the example scripts and edge-case coverage across modules."""

import runpy
import sys
from pathlib import Path

import pytest

from repro import Database, MoleculeAlgebra, attr, molecule_type_definition
from repro.core.atom import Atom
from repro.core.molecule import Molecule, MoleculeTypeDescription
from repro.core.predicates import Comparison, AttributeRef
from repro.exceptions import (
    AlgebraError,
    CardinalityError,
    DanglingLinkError,
    DomainError,
    IntegrityError,
    MADError,
    MQLError,
    MQLSemanticError,
    MQLSyntaxError,
    SchemaError,
    StorageError,
    TransactionError,
    UnionCompatibilityError,
)

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestExceptionHierarchy:
    def test_all_errors_derive_from_mad_error(self):
        for exc_type in (
            SchemaError,
            DomainError,
            IntegrityError,
            DanglingLinkError,
            CardinalityError,
            AlgebraError,
            UnionCompatibilityError,
            MQLError,
            MQLSyntaxError,
            MQLSemanticError,
            StorageError,
            TransactionError,
        ):
            assert issubclass(exc_type, MADError)

    def test_syntax_error_carries_position(self):
        error = MQLSyntaxError("bad token", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error)


@pytest.mark.parametrize(
    "script",
    sorted(path.name for path in EXAMPLES_DIR.glob("*.py")),
)
def test_example_scripts_run(script, capsys):
    """Every example under examples/ runs to completion (deliverable b)."""
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


class TestEmptyAndDegenerateCases:
    def test_empty_database_molecule_definition(self):
        db = Database("empty")
        db.define_atom_type("a", {"x": "integer"})
        molecule_type = molecule_type_definition(db, "mt", ["a"], [])
        assert len(molecule_type) == 0

    def test_single_atom_type_molecule(self):
        db = Database("single")
        db.define_atom_type("a", {"x": "integer"})
        db.insert_atom("a", identifier="a1", x=1)
        molecule_type = molecule_type_definition(db, "mt", ["a"], [])
        assert len(molecule_type) == 1
        assert len(molecule_type.occurrence[0]) == 1

    def test_restriction_of_empty_molecule_type(self):
        db = Database("empty")
        db.define_atom_type("a", {"x": "integer"})
        algebra = MoleculeAlgebra(db)
        molecule_type = algebra.define("mt", ["a"], [])
        result = algebra.restrict(molecule_type, attr("x") > 0)
        assert len(result.molecule_type) == 0
        assert result.database.is_valid()

    def test_molecule_with_no_links_nested_dict(self):
        atom = Atom("a", {"x": 1}, identifier="a1")
        description = MoleculeTypeDescription(["a"], [])
        molecule = Molecule(atom, [atom], [], description)
        assert molecule.to_nested_dict()["x"] == 1

    def test_comparison_repr_and_molecule_none_handling(self):
        atom = Atom("a", {"x": None}, identifier="a1")
        molecule = Molecule(atom, [atom], [])
        formula = Comparison(AttributeRef("x", "a"), "<", 5)
        assert not formula.evaluate_molecule(molecule)

    def test_unlinked_types_cannot_form_structure(self):
        db = Database("d")
        db.define_atom_type("a", {"x": "integer"})
        db.define_atom_type("b", {"x": "integer"})
        with pytest.raises(Exception):
            molecule_type_definition(db, "mt", ["a", "b"], [("-", "a", "b")])


class TestParallelLinkTypes:
    """Several link types between the same two atom types (allowed by Def. 2)."""

    def build(self):
        db = Database("flights")
        db.define_atom_type("city", {"name": "string"})
        db.define_atom_type("route", {"code": "string"})
        db.define_link_type("departs", "city", "route")
        db.define_link_type("arrives", "city", "route")
        sp = db.insert_atom("city", identifier="SP", name="Sao Paulo")
        rj = db.insert_atom("city", identifier="RJ", name="Rio")
        r1 = db.insert_atom("route", identifier="R1", code="SP-RJ")
        db.connect("departs", sp, r1)
        db.connect("arrives", rj, r1)
        return db

    def test_anonymous_link_is_ambiguous(self):
        db = self.build()
        with pytest.raises(Exception):
            molecule_type_definition(db, "mt", ["city", "route"], [("-", "city", "route")])

    def test_named_links_disambiguate(self):
        db = self.build()
        departures = molecule_type_definition(
            db, "departures", ["city", "route"], [("departs", "city", "route")]
        )
        arrivals = molecule_type_definition(
            db, "arrivals", ["city", "route"], [("arrives", "city", "route")]
        )
        sp = next(m for m in departures if m.root_atom.identifier == "SP")
        rj_dep = next(m for m in departures if m.root_atom.identifier == "RJ")
        assert len(sp.atoms_of_type("route")) == 1
        assert len(rj_dep.atoms_of_type("route")) == 0
        rj_arr = next(m for m in arrivals if m.root_atom.identifier == "RJ")
        assert len(rj_arr.atoms_of_type("route")) == 1

    def test_mql_with_explicit_link_names(self):
        from repro.mql import execute

        db = self.build()
        result = execute(db, "SELECT ALL FROM city -[departs]- route WHERE city.name = 'Sao Paulo';")
        assert len(result) == 1
        assert len(result.molecules[0].atoms_of_type("route")) == 1


class TestFormalSpecificationRoundTrip:
    def test_specification_of_derived_database(self, tiny_db):
        from repro.core import formal_specification
        from repro.core.atom_algebra import restrict

        result = restrict(tiny_db, "book", attr("year") > 1975, name="recent")
        text = formal_specification(result.database)
        assert "recent = <" in text
        assert "wrote~recent" in text
