"""Executor/algebra parity: the planned streaming pipeline and the legacy
direct-algebra path must return identical molecule sets.

The streaming executor never materializes intermediate results, while the
literal path propagates every operation's result set into an enlarged
database (Definitions 8–10).  Propagation renames atom types, so molecules
are compared by *value*: root-atom identifier plus the set of component atom
identifiers — exactly the molecule identity the set operations use.

Covers the geography database (restrictions on root and leaf types,
projections, set operations) and the bill-of-materials database (recursive
queries, with and without WHERE and depth bounds), plus property-style sweeps
over restriction thresholds.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datasets.bill_of_materials import build_bill_of_materials
from repro.datasets.geography import load_geography
from repro.mql import execute

GEOGRAPHY_STATEMENTS = [
    "SELECT ALL FROM mt_state(state-area-edge-point);",
    "SELECT ALL FROM state-area WHERE state.hectare > 800;",
    "SELECT ALL FROM state-area WHERE hectare > 700 AND state.code != 'BA';",
    "SELECT state, area FROM mt_state(state-area-edge-point);",
    "SELECT state, area FROM mt_state(state-area-edge-point) WHERE state.hectare > 700;",
    "SELECT ALL FROM point-edge-(area-state,net-river) WHERE point.name = 'pn';",
    "SELECT ALL FROM river-net-edge WHERE river.length > 2000;",
    "SELECT ALL FROM state-area WHERE state.hectare > 800 "
    "UNION SELECT ALL FROM state-area WHERE state.code = 'SP';",
    "SELECT ALL FROM state-area DIFFERENCE SELECT ALL FROM state-area WHERE state.hectare > 800;",
    "SELECT ALL FROM state-area WHERE state.hectare > 800 "
    "INTERSECT SELECT ALL FROM state-area WHERE state.code = 'MG';",
]

BOM_STATEMENTS = [
    "SELECT ALL FROM RECURSIVE part [composition] DOWN;",
    "SELECT ALL FROM RECURSIVE part [composition] DOWN WHERE part.level = 0;",
    "SELECT ALL FROM RECURSIVE part [composition] UP;",
    "SELECT ALL FROM RECURSIVE part [composition] DOWN 2;",
    "SELECT ALL FROM RECURSIVE part DOWN;",
]


def molecule_set(result):
    """Value-based identity of a result: root id plus component ids per molecule."""
    return {(m.root_atom.identifier, frozenset(m.atom_identifiers)) for m in result}


@pytest.fixture(scope="module")
def geo_db_module():
    return load_geography()


@pytest.fixture(scope="module")
def bom_db():
    return build_bill_of_materials(depth=4, fan_out=3, share_every=3, n_roots=2)


@pytest.mark.parametrize("statement", GEOGRAPHY_STATEMENTS)
def test_geography_parity(geo_db_module, statement):
    planned = execute(geo_db_module, statement, optimize=True)
    literal = execute(geo_db_module, statement, optimize=False)
    assert molecule_set(planned) == molecule_set(literal)


@pytest.mark.parametrize("statement", BOM_STATEMENTS)
def test_bom_recursive_parity(bom_db, statement):
    planned = execute(bom_db, statement, optimize=True)
    literal = execute(bom_db, statement, optimize=False)
    assert molecule_set(planned) == molecule_set(literal)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(threshold=st.integers(min_value=0, max_value=1200))
def test_root_restriction_parity_for_all_thresholds(geo_db_module, threshold):
    statement = f"SELECT ALL FROM state-area-edge-point WHERE state.hectare > {threshold};"
    planned = execute(geo_db_module, statement, optimize=True)
    literal = execute(geo_db_module, statement, optimize=False)
    assert molecule_set(planned) == molecule_set(literal)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(threshold=st.integers(min_value=0, max_value=12), direction=st.sampled_from(["DOWN", "UP"]))
def test_recursive_level_restriction_parity(bom_db, threshold, direction):
    statement = (
        f"SELECT ALL FROM RECURSIVE part [composition] {direction} "
        f"WHERE part.level < {threshold};"
    )
    planned = execute(bom_db, statement, optimize=True)
    literal = execute(bom_db, statement, optimize=False)
    assert molecule_set(planned) == molecule_set(literal)


def test_projection_parity_projects_identically(geo_db_module):
    statement = "SELECT state, area FROM mt_state(state-area-edge-point) WHERE state.hectare > 700;"
    planned = execute(geo_db_module, statement, optimize=True)
    literal = execute(geo_db_module, statement, optimize=False)
    # Besides identical molecule sets, both paths must cut molecules to the
    # same per-molecule size (one state plus one area).
    assert sorted(len(m) for m in planned) == sorted(len(m) for m in literal)
    assert all(len(m) == 2 for m in planned)


def test_planned_path_reports_work_and_plan(geo_db_module):
    result = execute(
        geo_db_module, "SELECT ALL FROM state-area WHERE state.hectare > 800;", optimize=True
    )
    assert result.counters is not None
    assert result.counters.molecules_derived >= len(result)
    assert result.plan_choice is not None
    literal = execute(
        geo_db_module, "SELECT ALL FROM state-area WHERE state.hectare > 800;", optimize=False
    )
    assert literal.counters is None and literal.plan_choice is None
