"""Log-shipping replication: followers, catch-up, promotion, read routing.

``storage/replication.py`` turns the WAL's commit/DDL records into a
replication feed: a :class:`FollowerEngine` seeds from the checkpoint image
plus WAL tail (the process-pool seeding path), then tracks the primary
either through the in-process :class:`ReplicationHub` feed or by polling
the WAL file incrementally, and serves snapshot-pinned reads at its applied
generation.  ``parallel_query(mode="replica")`` fans read statements over
the followers with a staleness bound.

Covers: WAL multi-observer fan-out (a process pool and a replication tail
must never clobber each other's tap — the PR 9 bugfix), incremental
``read_wal(from_offset=…)`` with a cut at every byte of an in-flight
record, follower polling across torn tails and checkpoint truncation
(re-seed, never rewind), hub catch-up with rewind/too-fresh refusals,
byte-parity live / mid-catch-up / after promotion, fencing (basic writes,
DDL, new and in-flight transactions), the replica router's staleness and
fallback semantics, planner dispatch costing with replicas, and a
hypothesis sweep of DML bursts vs. follower replay parity.
"""

from __future__ import annotations

import json
import shutil
import struct
import tempfile
import zlib

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.atom import reset_surrogate_counter
from repro.exceptions import StorageError, TransactionError
from repro.manipulation.transactions import Transaction
from repro.storage.engine import PrimaEngine
from repro.storage.replication import (
    FollowerEngine,
    ReplicationError,
    seed_engine,
)
from repro.storage.wal import DurabilityConfig, WriteAheadLog, read_wal


def fingerprint(result):
    """Order-independent canonical rendering of a query result."""
    return sorted(json.dumps(d, sort_keys=True, default=str) for d in result.to_dicts())


TREE_EDGES = [
    ("p0", "p1"),
    ("p0", "p2"),
    ("p1", "p3"),
    ("p1", "p4"),
    ("p2", "p5"),
    ("p3", "p6"),
    ("p6", "p7"),
    ("p7", "p8"),
    ("p9", "p10"),
]

STATEMENTS = [
    "SELECT item FROM item WHERE item.qty = 2;",
    "SELECT item.grp, COUNT(DISTINCT item.qty), SUM(item.val) FROM item GROUP BY item.grp;",
    "SELECT COUNT(item.name) FROM item;",
    "SELECT ALL FROM RECURSIVE part [composition] DOWN;",
]

COUNT_ITEMS = "SELECT COUNT(item.name) FROM item;"


def build_engine(directory, parts=12, items=60, checkpoint=True) -> PrimaEngine:
    reset_surrogate_counter()
    engine = PrimaEngine(durability=DurabilityConfig(directory))
    engine.create_atom_type(
        "item", {"name": "string", "grp": "string", "val": "real", "qty": "integer"}
    )
    engine.create_atom_type("part", {"part_no": "string", "cost": "integer"})
    engine.create_link_type("composition", "part", "part")
    for i in range(items):
        engine.store_atom(
            "item",
            identifier=f"i{i}",
            name=f"n{i}",
            grp="even" if i % 2 == 0 else "odd",
            val=float(i),
            qty=i % 5,
        )
    for i in range(parts):
        engine.store_atom("part", identifier=f"p{i}", part_no=f"P{i:03d}", cost=i * 10)
    for parent, child in TREE_EDGES:
        engine.connect("composition", parent, child)
    if checkpoint:
        engine.checkpoint()
    return engine


def burst(engine, start, stop, grp="burst"):
    for i in range(start, stop):
        engine.store_atom(
            "item", identifier=f"i{i}", name=f"n{i}", grp=grp, val=float(i), qty=i % 5
        )


def commit_blob(generation, identifier="tz0", grp="torn"):
    """Raw bytes of one WAL commit record, exactly as ``append`` writes them."""
    payload = {
        "r": "commit",
        "gen": generation,
        "events": [
            {
                "e": "ai",
                "t": "item",
                "id": identifier,
                "g": generation,
                "v": {"name": identifier, "grp": grp, "val": 1.0, "qty": 1},
            }
        ],
    }
    data = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return struct.pack(">II", len(data), zlib.crc32(data) & 0xFFFFFFFF) + data


@pytest.fixture(scope="module")
def replica_engine(tmp_path_factory):
    """One engine + two followers reused by the read-only routing tests."""
    engine = build_engine(tmp_path_factory.mktemp("replication-shared"))
    engine.create_follower("f0")
    engine.create_follower("f1")
    yield engine
    engine.close()


@pytest.fixture
def fresh_engine(tmp_path):
    engine = build_engine(tmp_path)
    yield engine
    engine.close()


class TestWalObserverFanout:
    """The PR 9 bugfix: ``set_observer`` was a single-slot tap that a
    process pool claimed and cleared on close, silently clobbering any
    replication tail registered alongside it."""

    def test_all_observers_receive_in_order(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        first, second = [], []
        wal.add_observer(first.append)
        wal.add_observer(second.append)
        wal.append_ddl({"op": "index", "type": "item", "attribute": "name"})
        wal.commit_events([{"e": "ai", "t": "item", "id": "x", "v": {}, "g": 1}])
        assert len(first) == 2 and first == second
        wal.close()

    def test_remove_only_detaches_own_tap(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        first, second = [], []
        wal.add_observer(first.append)
        wal.add_observer(second.append)
        wal.remove_observer(first.append)
        wal.remove_observer(first.append)  # idempotent
        wal.append_ddl({"op": "index", "type": "item", "attribute": "name"})
        assert first == [] and len(second) == 1
        wal.close()

    def test_pool_shutdown_keeps_replication_tap_live(self, fresh_engine):
        """Regression: with a process pool and a replication hub both
        subscribed, shutting the pool down must not clobber the hub's tap."""
        pool = fresh_engine.process_pool(workers=2)
        hub = fresh_engine.replication_hub()
        burst(fresh_engine, 100, 105)
        before = hub.feed_position()
        assert before >= 5
        pool.shutdown()
        burst(fresh_engine, 105, 110)
        assert hub.feed_position() == before + 5

    def test_hub_close_keeps_pool_tap_live(self, fresh_engine):
        pool = fresh_engine.process_pool(workers=2)
        hub = fresh_engine.replication_hub()
        fresh_engine._replication = None  # close out-of-band, engine keeps pool
        hub.close()
        before = pool.feed_position()
        burst(fresh_engine, 110, 115)
        assert pool.feed_position() == before + 5


class TestIncrementalReadWal:
    def test_from_offset_resumes_with_absolute_offsets(self, tmp_path):
        path = tmp_path / "wal.log"
        blobs = [commit_blob(i + 1, identifier=f"a{i}") for i in range(3)]
        path.write_bytes(b"".join(blobs))
        full = read_wal(path)
        assert len(full.records) == 3
        assert full.valid_bytes == sum(len(b) for b in blobs)
        resumed = read_wal(path, from_offset=len(blobs[0]))
        assert [r["gen"] for r in resumed.records] == [2, 3]
        assert resumed.valid_bytes == full.valid_bytes
        assert resumed.discarded_bytes == 0

    def test_missing_file_keeps_offset(self, tmp_path):
        scan = read_wal(tmp_path / "absent.log", from_offset=7)
        assert scan.records == [] and scan.valid_bytes == 7

    def test_cut_at_every_byte_is_not_yet(self, tmp_path):
        """An in-flight append cut at every possible byte must scan as a
        torn tail: zero extra records, resume offset unmoved, never an
        error — the poller's 'not yet' contract."""
        path = tmp_path / "wal.log"
        settled = commit_blob(1, identifier="ok")
        inflight = commit_blob(2, identifier="half")
        for cut in range(len(inflight)):
            path.write_bytes(settled + inflight[:cut])
            scan = read_wal(path, from_offset=len(settled))
            assert scan.records == []
            assert scan.valid_bytes == len(settled)
            assert scan.discarded_bytes == cut
            assert scan.torn_tail == (cut > 0)
        path.write_bytes(settled + inflight)
        scan = read_wal(path, from_offset=len(settled))
        assert [r["gen"] for r in scan.records] == [2]
        assert scan.valid_bytes == len(settled) + len(inflight)
        assert not scan.torn_tail


class TestFollowerPolling:
    def test_poll_applies_new_records(self, fresh_engine, tmp_path):
        follower = FollowerEngine(fresh_engine.durability.directory)
        assert follower.applied_generation == fresh_engine.generation
        burst(fresh_engine, 100, 120)
        assert follower.poll() >= 20
        assert follower.applied_generation == fresh_engine.generation
        for statement in STATEMENTS:
            assert fingerprint(follower.query(statement)) == fingerprint(
                fresh_engine.query(statement)
            )
        assert follower.poll() == 0  # nothing new: no re-read, no re-apply

    def test_poll_treats_torn_tail_as_not_yet(self, fresh_engine, tmp_path):
        """A poller racing an in-flight append sees half a record: it must
        re-poll from the last good offset later, never truncate or error."""
        config = fresh_engine.durability
        copy = tmp_path / "copy"
        copy.mkdir()
        fresh_engine.wal.sync()
        shutil.copy(config.checkpoint_path, copy / "checkpoint.json")
        shutil.copy(config.wal_path, copy / "wal.log")
        follower = FollowerEngine(copy)
        generation = follower.applied_generation + 1
        blob = commit_blob(generation)
        half = len(blob) // 2
        with open(copy / "wal.log", "ab") as handle:
            handle.write(blob[:half])
        baseline = fingerprint(follower.query(COUNT_ITEMS))
        assert follower.poll() == 0
        assert follower.counters["torn_tail_retries"] == 1
        assert fingerprint(follower.query(COUNT_ITEMS)) == baseline
        with open(copy / "wal.log", "ab") as handle:
            handle.write(blob[half:])
        assert follower.poll() == 1
        assert follower.applied_generation == generation
        assert follower.engine.get_atom("item", "tz0") is not None
        # The torn bytes were left alone, not truncated: the completed
        # record was read from the original offset.
        assert follower.counters["reseeds"] == 0

    def test_poll_survives_checkpoint_truncation(self, fresh_engine):
        """Mirror of test_procpool's catch-up-across-truncation: a follower
        mid-tail re-seeds from the new image instead of replaying a rewound
        file — and never moves backwards."""
        follower = FollowerEngine(fresh_engine.durability.directory)
        burst(fresh_engine, 200, 220, grp="pre")
        follower.poll()
        generation_before = follower.applied_generation
        fresh_engine.checkpoint()  # truncates the WAL under the poller
        burst(fresh_engine, 220, 240, grp="post")
        follower.poll()
        assert follower.counters["reseeds"] == 1
        assert follower.applied_generation >= generation_before
        for statement in STATEMENTS:
            assert fingerprint(follower.query(statement)) == fingerprint(
                fresh_engine.query(statement)
            )

    def test_seed_without_checkpoint_replays_wal_only(self, tmp_path):
        engine = build_engine(tmp_path, checkpoint=False)
        try:
            seed = seed_engine(tmp_path)
            assert seed.checkpoint_stamp is None
            assert seed.generation == engine.generation
            assert seed.records_replayed > 0
        finally:
            engine.close()


class TestHubCatchUp:
    def test_ship_slice_and_fast_forward(self, fresh_engine):
        follower = fresh_engine.create_follower()
        hub = fresh_engine.replication_hub()
        burst(fresh_engine, 100, 150)
        assert follower.lag(fresh_engine.generation) == 50
        shipped = hub.ship(follower)
        assert shipped == 50
        assert follower.lag(fresh_engine.generation) == 0
        for statement in STATEMENTS:
            assert fingerprint(follower.query(statement)) == fingerprint(
                fresh_engine.query(statement)
            )

    def test_parity_mid_catchup_at_follower_generation(self, fresh_engine):
        """A lagging follower answers exactly like the primary pinned at
        the follower's applied generation — staleness is bounded and
        *consistent*, never a torn intermediate state."""
        follower = fresh_engine.create_follower()
        with fresh_engine.snapshot_at() as pinned:
            assert pinned.generation == follower.applied_generation
            burst(fresh_engine, 100, 130)
            for statement in STATEMENTS:
                assert fingerprint(follower.query(statement)) == fingerprint(
                    pinned.query(statement)
                )

    def test_ship_refuses_rewind(self, fresh_engine):
        follower = fresh_engine.create_follower()
        hub = fresh_engine.replication_hub()
        old_generation = fresh_engine.generation - 10
        with pytest.raises(ReplicationError):
            hub.ship(follower, pin_generation=old_generation)
        assert hub.counters["refusals"] == 1

    def test_ship_refuses_too_fresh_slice(self, fresh_engine):
        follower = fresh_engine.create_follower()
        hub = fresh_engine.replication_hub()
        with fresh_engine.snapshot_at() as pinned:
            burst(fresh_engine, 100, 110)
            # The live cut now holds commits past the pin: shipping them
            # would make the follower answer for a future the pin must not
            # see.
            with pytest.raises(ReplicationError):
                hub.ship(follower, pin_generation=pinned.generation)
        assert hub.counters["refusals"] == 1
        assert follower.applied_seq == 0  # nothing shipped

    def test_feed_trimmed_after_catch_up(self, fresh_engine):
        fresh_engine.create_follower()
        hub = fresh_engine.replication_hub()
        burst(fresh_engine, 100, 140)
        hub.catch_up_all()
        assert hub._feed == []  # every follower applied everything
        assert hub.feed_position() == hub._feed_base

    def test_replication_requires_durability(self):
        engine = PrimaEngine()
        with pytest.raises(StorageError):
            engine.create_follower()


class TestPromotion:
    def test_promoted_follower_reads_identical(self, fresh_engine):
        """Everything committed on the primary before the fence reads
        byte-identically on the promoted follower."""
        follower = fresh_engine.create_follower()
        burst(fresh_engine, 100, 140)
        fresh_engine.query(
            "INSERT item VALUES {name: 'tx0', grp: 'tx', val: 1.0, qty: 1};"
        )
        expected = [fingerprint(fresh_engine.query(s)) for s in STATEMENTS]
        promoted = follower.promote()
        assert fresh_engine.fenced
        assert promoted.generation == fresh_engine.generation
        for statement, want in zip(STATEMENTS, expected):
            assert fingerprint(promoted.query(statement)) == want

    def test_fenced_primary_refuses_writes(self, fresh_engine):
        follower = fresh_engine.create_follower()
        follower.promote()
        with pytest.raises(StorageError):
            fresh_engine.store_atom("item", identifier="nope", name="x", grp="x",
                                    val=0.0, qty=0)
        with pytest.raises(StorageError):
            fresh_engine.connect("composition", "p0", "p9")
        with pytest.raises(StorageError):
            fresh_engine.delete_atom("item", "i0")
        with pytest.raises(StorageError):
            fresh_engine.create_atom_type("late", {"a": "string"})
        with pytest.raises(StorageError):
            fresh_engine.create_index("item", "grp")
        with pytest.raises(TransactionError):
            fresh_engine.query(
                "INSERT item VALUES {name: 'z', grp: 'z', val: 0.0, qty: 0};"
            )
        # Reads keep working on the fenced primary.
        assert fingerprint(fresh_engine.query(COUNT_ITEMS))

    def test_in_flight_transaction_aborts_at_commit(self, fresh_engine):
        follower = fresh_engine.create_follower()
        txn = Transaction(fresh_engine.to_database())
        txn.begin()
        txn.insert_atom("item", name="inflight", grp="tx", val=9.0, qty=9)
        follower.promote()  # fences while txn is open
        with pytest.raises(TransactionError):
            txn.commit()
        # The abort left no partial state and shipped nothing.
        assert fresh_engine.lookup("item", "name", "inflight") == ()
        with pytest.raises(TransactionError):
            Transaction(fresh_engine.to_database()).begin()

    def test_promotion_point_is_exact(self, fresh_engine):
        """State committed before the fence is on the promoted engine;
        nothing after the fence can exist — there is no divergence window."""
        follower = fresh_engine.create_follower()
        burst(fresh_engine, 100, 120)
        count_before = fingerprint(fresh_engine.query(COUNT_ITEMS))
        promoted = follower.promote()
        assert fingerprint(promoted.query(COUNT_ITEMS)) == count_before
        # The promoted engine is writable and moves on alone.
        promoted.store_atom("item", identifier="new0", name="new0", grp="new",
                            val=1.0, qty=1)
        assert fingerprint(promoted.query(COUNT_ITEMS)) != count_before
        assert fingerprint(fresh_engine.query(COUNT_ITEMS)) == count_before

    def test_follower_handle_refuses_after_promotion(self, fresh_engine):
        follower = fresh_engine.create_follower()
        follower.promote()
        with pytest.raises(ReplicationError):
            follower.query(COUNT_ITEMS)
        with pytest.raises(ReplicationError):
            follower.poll()
        with pytest.raises(ReplicationError):
            follower.promote()
        hub = fresh_engine.replication_hub()
        assert follower not in hub.followers()
        assert hub.counters["promotions"] == 1

    def test_file_tailing_follower_promotes_after_drain(self, fresh_engine):
        follower = FollowerEngine(fresh_engine.durability.directory)
        burst(fresh_engine, 100, 110)
        promoted = follower.promote()  # drains one final poll, then converts
        assert promoted.generation == fresh_engine.generation
        assert fingerprint(promoted.query(COUNT_ITEMS)) == fingerprint(
            fresh_engine.query(COUNT_ITEMS)
        )
        # No hub: fencing the (possibly remote) primary is the caller's job.
        assert not fresh_engine.fenced


class TestReplicaRouter:
    def test_router_parity_with_followers(self, replica_engine):
        serial = replica_engine.parallel_query(STATEMENTS, mode="serial")
        routed = replica_engine.parallel_query(STATEMENTS, mode="replica")
        assert len(routed) == len(serial)
        for expected, got in zip(serial, routed):
            assert fingerprint(got) == fingerprint(expected)
        assert replica_engine.replication_hub().counters["routed"] >= 1

    def test_router_catches_lagging_followers_up(self, replica_engine):
        hub = replica_engine.replication_hub()
        burst(replica_engine, 500, 520, grp="lagged")
        waits_before = hub.counters["waits"]
        serial = replica_engine.parallel_query(STATEMENTS, mode="serial")
        routed = replica_engine.parallel_query(STATEMENTS, mode="replica")
        for expected, got in zip(serial, routed):
            assert fingerprint(got) == fingerprint(expected)
        assert hub.counters["waits"] > waits_before
        assert hub.max_lag() == 0

    def test_router_skips_followers_ahead_of_old_pin(self, replica_engine):
        hub = replica_engine.replication_hub()
        with replica_engine.snapshot_at() as old:
            burst(replica_engine, 520, 530, grp="ahead")
            hub.catch_up_all()  # both followers move past the old pin
            skipped_before = hub.counters["skipped"]
            fallbacks_before = hub.counters["fallbacks"]
            (result,) = replica_engine.parallel_query(
                [COUNT_ITEMS], mode="replica", generation=old.generation
            )
            assert fingerprint(result) == fingerprint(old.query(COUNT_ITEMS))
            assert hub.counters["skipped"] >= skipped_before + 2
            assert hub.counters["fallbacks"] > fallbacks_before

    def test_router_bounded_staleness_serves_follower_generation(self, tmp_path):
        engine = build_engine(tmp_path)
        try:
            follower = engine.create_follower()
            with engine.snapshot_at() as pinned:  # pin == follower generation
                burst(engine, 100, 110)
                (stale,) = engine.parallel_query(
                    [COUNT_ITEMS], mode="replica", max_lag=1_000
                )
                # Within the bound the follower serves as-is — its answer is
                # the consistent state at its own generation, not the head.
                assert fingerprint(stale) == fingerprint(pinned.query(COUNT_ITEMS))
                assert fingerprint(stale) != fingerprint(engine.query(COUNT_ITEMS))
                assert follower.lag(engine.generation) == 10
        finally:
            engine.close()

    def test_router_unshippable_statements_fall_back(self, replica_engine):
        hub = replica_engine.replication_hub()
        fallbacks_before = hub.counters["fallbacks"]
        (result,) = replica_engine.parallel_query(
            ["EXPLAIN SELECT item FROM item WHERE item.qty = 2;"], mode="replica"
        )
        assert result is not None
        assert hub.counters["fallbacks"] > fallbacks_before

    def test_router_dml_still_rejected(self, replica_engine):
        with pytest.raises(StorageError):
            replica_engine.parallel_query(
                ["DELETE FROM item WHERE item.qty = 2;"], mode="replica"
            )

    def test_router_without_followers_falls_back(self, tmp_path):
        engine = build_engine(tmp_path)
        try:
            serial = engine.parallel_query(STATEMENTS[:2], mode="serial")
            routed = engine.parallel_query(STATEMENTS[:2], mode="replica")
            for expected, got in zip(serial, routed):
                assert fingerprint(got) == fingerprint(expected)
        finally:
            engine.close()

    def test_maintenance_report_counters(self, replica_engine):
        replica_engine.parallel_query(STATEMENTS[:2], mode="replica")
        report = replica_engine.maintenance_report()
        assert report["replication_followers"] == 2
        assert report["replication_followers_started"] == 2
        assert report["replication_routed"] >= 1
        assert report["replication_lag"] >= 0
        assert report["fenced"] is False


class TestDispatchCosting:
    def test_explain_reports_replica_dispatch(self, replica_engine):
        replica_engine.replication_hub().catch_up_all()
        choice = replica_engine.plan(
            "SELECT ALL FROM RECURSIVE part [composition] DOWN;"
        )
        assert choice.dispatch in ("serial", "replica", "process")
        note = next(n for n in choice.notes if n.startswith("dispatch:"))
        assert "replica" in note and "lag generations" in note

    def test_costing_is_deterministic(self, replica_engine):
        for statement in STATEMENTS:
            first = replica_engine.plan(statement)
            second = replica_engine.plan(statement)
            assert first.dispatch == second.dispatch
            assert first.notes[-1] == second.notes[-1]

    def test_cheap_plans_stay_serial(self, replica_engine):
        # A point lookup costs far less than the routing overhead.
        choice = replica_engine.plan("SELECT item FROM item WHERE item.qty = 2;")
        if choice.dispatch is not None:
            assert choice.dispatch == "serial" or choice.optimized_cost > 50


@st.composite
def dml_batches(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        kind = draw(st.sampled_from(["insert", "modify", "delete"]))
        index = draw(st.integers(min_value=0, max_value=59))
        if kind == "insert":
            ops.append(
                (
                    "insert",
                    draw(st.integers(min_value=1000, max_value=1999)),
                    draw(st.integers(min_value=0, max_value=4)),
                )
            )
        elif kind == "modify":
            # MQL real literals are fixed-point (no exponent notation).
            value = round(draw(st.floats(0, 100, allow_nan=False)), 2)
            ops.append(("modify", index, value))
        else:
            ops.append(("delete", index))
    return ops


def apply_batch(engine, batch):
    for op in batch:
        if op[0] == "insert":
            _, index, qty = op
            engine.query(
                "INSERT item VALUES {{name: 'h{0}', grp: 'hyp', "
                "val: {0}.0, qty: {1}}};".format(index, qty)
            )
        elif op[0] == "modify":
            _, index, val = op
            engine.query(
                f"MODIFY item FROM item SET val = {val:.2f} "
                f"WHERE item.name = 'n{index}';"
            )
        else:
            _, index = op
            engine.query(f"DELETE FROM item WHERE item.name = 'n{index}';")


class TestDMLBurstSweep:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(batch=dml_batches())
    def test_follower_replay_parity_after_dml(self, replica_engine, batch):
        """Whatever committed DML lands on the primary, a caught-up follower
        replays to byte-identical answers (state accumulates across examples
        — every catch-up ships only the new feed tail)."""
        apply_batch(replica_engine, batch)
        replica_engine.replication_hub().catch_up_all()
        for follower in replica_engine.replication_hub().followers():
            for statement in STATEMENTS[:3]:
                assert fingerprint(follower.query(statement)) == fingerprint(
                    replica_engine.query(statement)
                )

    @settings(max_examples=6, deadline=None)
    @given(batch=dml_batches())
    def test_promotion_parity_after_dml(self, batch):
        """Promotion after an arbitrary DML burst hands over byte-identical
        state — the fence → final-cut → ship ordering leaves no window."""
        with tempfile.TemporaryDirectory() as directory:
            engine = build_engine(directory, parts=6, items=20)
            try:
                follower = engine.create_follower()
                apply_batch(engine, batch)
                expected = [
                    fingerprint(engine.query(s)) for s in STATEMENTS[:3]
                ]
                promoted = follower.promote()
                for statement, want in zip(STATEMENTS[:3], expected):
                    assert fingerprint(promoted.query(statement)) == want
            finally:
                engine.close()
