"""Property-based tests (hypothesis) for the algebraic laws and core invariants.

The closure theorems and the standard algebraic identities must hold for *all*
databases, not only the worked example; these tests generate random databases,
occurrences and formulas and check the laws on them.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.atom import Atom, AtomType
from repro.core.atom_algebra import difference, intersection, product, project, restrict, union
from repro.core.database import Database
from repro.core.derivation import derive_occurrence, is_total, mv_graph
from repro.core.graph import DirectedLink, md_graph
from repro.core.molecule import MoleculeTypeDescription
from repro.core.molecule_algebra import (
    molecule_difference,
    molecule_intersection,
    molecule_restriction,
    molecule_type_definition,
    molecule_union,
)
from repro.core.predicates import attr
from repro.nf2.algebra import nest, unnest
from repro.nf2.nested_relation import NestedRelation, NestedSchema

# --------------------------------------------------------------------------- strategies

values = st.integers(min_value=0, max_value=20)
identifiers = st.text(alphabet="abcdefgh", min_size=1, max_size=4)


@st.composite
def small_databases(draw):
    """A database with two linked atom types and a random occurrence."""
    db = Database("prop")
    db.define_atom_type("parent", {"key": "string", "value": "integer"})
    db.define_atom_type("child", {"key": "string", "value": "integer"})
    db.define_link_type("pc", "parent", "child")
    n_parents = draw(st.integers(min_value=1, max_value=6))
    n_children = draw(st.integers(min_value=0, max_value=8))
    for i in range(n_parents):
        db.insert_atom("parent", identifier=f"p{i}", key=f"p{i}", value=draw(values))
    for i in range(n_children):
        db.insert_atom("child", identifier=f"c{i}", key=f"c{i}", value=draw(values))
    if n_children:
        n_links = draw(st.integers(min_value=0, max_value=n_parents * n_children))
        for _ in range(n_links):
            parent = f"p{draw(st.integers(min_value=0, max_value=n_parents - 1))}"
            child = f"c{draw(st.integers(min_value=0, max_value=n_children - 1))}"
            db.connect("pc", parent, child)
    return db


thresholds = st.integers(min_value=0, max_value=20)

DESCRIPTION = MoleculeTypeDescription(["parent", "child"], [("pc", "parent", "child")])

relaxed = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# ------------------------------------------------------------------ atom-type algebra


@relaxed
@given(db=small_databases(), threshold=thresholds)
def test_restriction_is_subset_and_idempotent(db, threshold):
    formula = attr("value") <= threshold
    once = restrict(db, "parent", formula)
    twice = restrict(once.database, once.atom_type, formula)
    assert set(twice.atom_type.identifiers()) == set(once.atom_type.identifiers())
    assert set(once.atom_type.identifiers()) <= set(db.atyp("parent").identifiers())


@relaxed
@given(db=small_databases(), threshold=thresholds)
def test_restriction_partitions_occurrence(db, threshold):
    low = restrict(db, "parent", attr("value") <= threshold)
    high = restrict(low.database, "parent", attr("value") > threshold)
    combined = union(high.database, low.atom_type, high.atom_type)
    assert set(combined.atom_type.identifiers()) == set(db.atyp("parent").identifiers())


@relaxed
@given(db=small_databases())
def test_union_commutative_and_idempotent(db):
    a = restrict(db, "parent", attr("value") <= 10)
    b = restrict(a.database, "parent", attr("value") >= 5)
    ab = union(b.database, a.atom_type, b.atom_type)
    ba = union(ab.database, b.atom_type, a.atom_type)
    assert set(ab.atom_type.identifiers()) == set(ba.atom_type.identifiers())
    aa = union(ba.database, a.atom_type, a.atom_type)
    assert set(aa.atom_type.identifiers()) == set(a.atom_type.identifiers())


@relaxed
@given(db=small_databases())
def test_difference_and_intersection_laws(db):
    a = db.atyp("parent")
    b = restrict(db, "parent", attr("value") <= 10)
    diff = difference(b.database, a, b.atom_type)
    inter = intersection(diff.database, a, b.atom_type)
    # A = (A - B) ∪ (A ∩ B) when B ⊆ A.
    recombined = union(inter.database, diff.atom_type, inter.atom_type)
    assert set(recombined.atom_type.identifiers()) == set(a.identifiers())
    # A - A = ∅
    empty = difference(recombined.database, a, a)
    assert len(empty.atom_type) == 0


@relaxed
@given(db=small_databases())
def test_product_cardinality_and_projection_size(db):
    result = product(db, "parent", "child")
    assert len(result.atom_type) == len(db.atyp("parent")) * len(db.atyp("child"))
    projected = project(result.database, result.atom_type, ["key"])
    assert len(projected.atom_type) == len(result.atom_type)
    assert projected.atom_type.description.names == ("key",)


@relaxed
@given(db=small_databases(), threshold=thresholds)
def test_inherited_links_never_dangle(db, threshold):
    result = restrict(db, "parent", attr("value") <= threshold)
    surviving = set(result.atom_type.identifiers())
    children = set(db.atyp("child").identifiers())
    for link_type in result.inherited_link_types:
        for link in link_type:
            assert link.identifiers <= (surviving | children)
    assert result.database.is_valid()


# ------------------------------------------------------------------ molecule algebra


@relaxed
@given(db=small_databases())
def test_derived_molecules_satisfy_mv_graph_and_totality(db):
    molecules = derive_occurrence(db, DESCRIPTION)
    assert len(molecules) == len(db.atyp("parent"))
    for molecule in molecules:
        ok, reason = mv_graph(db, DESCRIPTION, molecule)
        assert ok, reason
        assert is_total(db, DESCRIPTION, molecule)


@relaxed
@given(db=small_databases(), threshold=thresholds)
def test_molecule_restriction_subset_and_complement(db, threshold):
    molecule_type = molecule_type_definition(db, "mt", DESCRIPTION)
    low = molecule_restriction(db, molecule_type, attr("value", "parent") <= threshold)
    high = molecule_restriction(low.database, molecule_type, attr("value", "parent") > threshold)
    assert len(low.molecule_type) + len(high.molecule_type) == len(molecule_type)
    merged = molecule_union(high.database, low.molecule_type, high.molecule_type)
    assert len(merged.molecule_type) == len(molecule_type)


@relaxed
@given(db=small_databases(), threshold=thresholds)
def test_molecule_intersection_identity_law(db, threshold):
    molecule_type = molecule_type_definition(db, "mt", DESCRIPTION)
    subset = molecule_restriction(db, molecule_type, attr("value", "parent") <= threshold)
    # Ψ(mt, subset) must equal subset (subset ⊆ mt), computed via double difference.
    inter = molecule_intersection(subset.database, molecule_type, subset.molecule_type)
    assert {m.root_atom.identifier for m in inter.molecule_type} == {
        m.root_atom.identifier for m in subset.molecule_type
    }
    # Δ(mt, mt) = ∅
    empty = molecule_difference(inter.database, molecule_type, molecule_type)
    assert len(empty.molecule_type) == 0


@relaxed
@given(db=small_databases())
def test_propagation_preserves_molecule_contents(db):
    molecule_type = molecule_type_definition(db, "mt", DESCRIPTION)
    result = molecule_restriction(db, molecule_type, attr("value", "parent") >= 0)  # keep all
    assert len(result.molecule_type) == len(molecule_type)
    originals = {m.root_atom.identifier: m.atom_identifiers for m in molecule_type}
    for molecule in result.molecule_type:
        assert molecule.atom_identifiers == originals[molecule.root_atom.identifier]


# ------------------------------------------------------------------------- md_graph


@relaxed
@given(
    n_nodes=st.integers(min_value=1, max_value=6),
    extra_edges=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=5),
)
def test_md_graph_accepts_chains_and_rejects_cycles(n_nodes, extra_edges):
    nodes = [f"t{i}" for i in range(n_nodes)]
    edges = [DirectedLink(f"l{i}", nodes[i], nodes[i + 1]) for i in range(n_nodes - 1)]
    ok, reason = md_graph(nodes, edges)
    assert ok, reason
    # Adding a back edge to an ancestor must break acyclicity.
    if n_nodes >= 2:
        cyclic = edges + [DirectedLink("back", nodes[-1], nodes[0])]
        ok, _ = md_graph(nodes, cyclic)
        assert not ok


# ------------------------------------------------------------------------------ NF²


@relaxed
@given(
    rows=st.lists(
        st.tuples(st.sampled_from(["SP", "MG", "PR"]), identifiers, values),
        min_size=1,
        max_size=12,
    )
)
def test_nest_unnest_partial_inverse(rows):
    schema = NestedSchema(("state", "edge_id", "value"))
    relation = NestedRelation(
        "r", schema, [{"state": s, "edge_id": e, "value": v} for s, e, v in rows]
    )
    nested = nest(relation, ["edge_id", "value"], into="edges")
    flattened = unnest(nested, "edges")
    original = {tuple(sorted(row.items())) for row in relation}
    returned = {tuple(sorted(row.items())) for row in flattened}
    assert original == returned
    # Groups never exceed the number of distinct grouping values.
    assert len(nested) == len({row["state"] for row in relation})


@relaxed
@given(db=small_databases())
def test_relational_mapping_tuple_conservation(db):
    from repro.relational import map_database

    mapping = map_database(db)
    assert mapping.total_tuples() == db.atom_count() + db.link_count()
