"""Unit tests for molecule derivation: m_dom, contained, total, mv_graph (Definition 6)."""

import pytest

from repro.core.derivation import (
    contained,
    derive_molecule,
    derive_occurrence,
    hierarchical_join_statistics,
    is_total,
    mv_graph,
    resolve_description,
    resolve_directed_link,
)
from repro.core.graph import DirectedLink
from repro.core.molecule import Molecule, MoleculeTypeDescription
from repro.exceptions import SchemaError


@pytest.fixture()
def oeuvre_desc():
    return MoleculeTypeDescription(["author", "book"], [("wrote", "author", "book")])


class TestResolution:
    def test_resolve_named_link(self, tiny_db):
        link_type = resolve_directed_link(tiny_db, DirectedLink("wrote", "author", "book"))
        assert link_type.name == "wrote"

    def test_resolve_anonymous_link(self, tiny_db):
        link_type = resolve_directed_link(tiny_db, DirectedLink("-", "author", "book"))
        assert link_type.name == "wrote"

    def test_resolve_anonymous_ambiguous_raises(self, tiny_db):
        tiny_db.define_link_type("edited", "author", "book")
        with pytest.raises(SchemaError):
            resolve_directed_link(tiny_db, DirectedLink("-", "author", "book"))

    def test_resolve_anonymous_missing_raises(self, tiny_db):
        tiny_db.define_atom_type("publisher", {"name": "string"})
        with pytest.raises(SchemaError):
            resolve_directed_link(tiny_db, DirectedLink("-", "author", "publisher"))

    def test_resolve_wrong_endpoints_raises(self, tiny_db):
        tiny_db.define_atom_type("publisher", {"name": "string"})
        with pytest.raises(SchemaError):
            resolve_directed_link(tiny_db, DirectedLink("wrote", "author", "publisher"))

    def test_resolve_description_replaces_anonymous(self, tiny_db):
        description = MoleculeTypeDescription(["author", "book"], [("-", "author", "book")])
        resolved = resolve_description(tiny_db, description)
        assert resolved.directed_links[0].link_type_name == "wrote"

    def test_resolve_description_unchanged_when_named(self, tiny_db, oeuvre_desc):
        assert resolve_description(tiny_db, oeuvre_desc) is oeuvre_desc


class TestDerivation:
    def test_one_molecule_per_root_atom(self, tiny_db, oeuvre_desc):
        molecules = derive_occurrence(tiny_db, oeuvre_desc)
        assert len(molecules) == len(tiny_db.atyp("author"))

    def test_hierarchical_join_collects_children(self, tiny_db, oeuvre_desc):
        molecules = {m.root_atom.identifier: m for m in derive_occurrence(tiny_db, oeuvre_desc)}
        codd = molecules["a1"]
        assert {a["title"] for a in codd.atoms_of_type("book")} == {"Relational Model", "Survey"}
        ullman = molecules["a2"]
        assert {a["title"] for a in ullman.atoms_of_type("book")} == {"Principles", "Survey"}

    def test_shared_subobject_appears_in_both_molecules(self, tiny_db, oeuvre_desc):
        molecules = derive_occurrence(tiny_db, oeuvre_desc)
        shared = molecules[0].shares_atoms_with(molecules[1])
        assert "b3" in shared

    def test_links_included(self, tiny_db, oeuvre_desc):
        molecule = derive_molecule(tiny_db, oeuvre_desc, tiny_db.atyp("author").get("a1"))
        assert len(molecule.links) == 2

    def test_childless_root_is_single_atom_molecule(self, tiny_db, oeuvre_desc):
        lonely = tiny_db.insert_atom("author", identifier="a3", name="Nobody", country="--")
        molecule = derive_molecule(tiny_db, oeuvre_desc, lonely)
        assert len(molecule) == 1
        assert len(molecule.links) == 0

    def test_multi_level_derivation(self, geo_db, mt_state_desc):
        molecules = derive_occurrence(geo_db, mt_state_desc)
        assert len(molecules) == 10
        sp = next(m for m in molecules if m.root_atom["code"] == "SP")
        assert len(sp.atoms_of_type("area")) == 1
        assert len(sp.atoms_of_type("edge")) >= 3
        assert len(sp.atoms_of_type("point")) >= 3

    def test_diamond_structure_includes_atom_once(self, geo_db, point_neighborhood_desc):
        molecules = derive_occurrence(geo_db, point_neighborhood_desc)
        pn = next(m for m in molecules if m.root_atom["name"] == "pn")
        identifiers = [a.identifier for a in pn.atoms]
        assert len(identifiers) == len(set(identifiers))

    def test_statistics(self, geo_db, mt_state_desc):
        stats = hierarchical_join_statistics(geo_db, mt_state_desc)
        assert stats["molecules"] == 10
        assert stats["atoms_touched"] >= stats["distinct_atoms"]
        assert stats["links_touched"] > 0


class TestPredicates:
    def test_contained_root(self, tiny_db, oeuvre_desc):
        molecule = derive_molecule(tiny_db, oeuvre_desc, tiny_db.atyp("author").get("a1"))
        assert contained(tiny_db, oeuvre_desc, molecule, molecule.root_atom)

    def test_contained_child_via_link(self, tiny_db, oeuvre_desc):
        molecule = derive_molecule(tiny_db, oeuvre_desc, tiny_db.atyp("author").get("a1"))
        book = tiny_db.atyp("book").get("b1")
        assert contained(tiny_db, oeuvre_desc, molecule, book)

    def test_not_contained_unreachable_atom(self, tiny_db, oeuvre_desc):
        molecule = derive_molecule(tiny_db, oeuvre_desc, tiny_db.atyp("author").get("a1"))
        unrelated = tiny_db.atyp("book").get("b2")  # written only by Ullman
        assert not contained(tiny_db, oeuvre_desc, molecule, unrelated)

    def test_is_total_for_derived_molecule(self, tiny_db, oeuvre_desc):
        molecule = derive_molecule(tiny_db, oeuvre_desc, tiny_db.atyp("author").get("a1"))
        assert is_total(tiny_db, oeuvre_desc, molecule)

    def test_is_total_fails_for_truncated_molecule(self, tiny_db, oeuvre_desc):
        root = tiny_db.atyp("author").get("a1")
        truncated = Molecule(root, [root], [], oeuvre_desc)
        assert not is_total(tiny_db, oeuvre_desc, truncated)

    def test_mv_graph_accepts_derived_molecules(self, geo_db, mt_state_desc):
        for molecule in derive_occurrence(geo_db, mt_state_desc):
            ok, reason = mv_graph(geo_db, mt_state_desc, molecule)
            assert ok, reason

    def test_mv_graph_rejects_foreign_atom_type(self, tiny_db, oeuvre_desc):
        root = tiny_db.atyp("author").get("a1")
        alien = tiny_db.insert_atom("author", identifier="alien", name="x", country="y")
        tiny_db.define_atom_type("publisher", {"name": "string"})
        foreign = tiny_db.insert_atom("publisher", identifier="p1", name="ACM")
        molecule = Molecule(root, [root, foreign], [], oeuvre_desc)
        ok, reason = mv_graph(tiny_db, oeuvre_desc, molecule)
        assert not ok and "type outside" in reason

    def test_mv_graph_rejects_wrong_root_type(self, tiny_db, oeuvre_desc):
        book = tiny_db.atyp("book").get("b1")
        molecule = Molecule(book, [book], [], oeuvre_desc)
        ok, reason = mv_graph(tiny_db, oeuvre_desc, molecule)
        assert not ok and "root" in reason

    def test_mv_graph_rejects_incoherent_molecule(self, tiny_db, oeuvre_desc):
        root = tiny_db.atyp("author").get("a1")
        stray = tiny_db.atyp("book").get("b2")
        molecule = Molecule(root, [root, stray], [], oeuvre_desc)
        ok, reason = mv_graph(tiny_db, oeuvre_desc, molecule)
        assert not ok
