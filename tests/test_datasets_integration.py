"""Dataset loaders and cross-module integration tests (end-to-end scenarios)."""

import pytest

from repro import (
    MoleculeAlgebra,
    RecursiveDescription,
    attr,
    build_bill_of_materials,
    build_geography,
    build_synthetic_network,
    load_geography,
    molecule_type_definition,
    recursive_molecule_type,
)
from repro.core.molecule import MoleculeTypeDescription
from repro.datasets.bill_of_materials import root_parts
from repro.datasets.geography import mt_state_description, point_neighborhood_description
from repro.datasets.synthetic import random_molecule_description
from repro.mql import execute
from repro.nf2 import molecule_type_to_nested
from repro.relational import assemble_complex_objects, map_database
from repro.storage import PrimaEngine


class TestGeographyDataset:
    def test_paper_instance_shape(self):
        db = load_geography()
        assert db.is_valid()
        assert {len(db.atyp(n)) for n in ("state", "river")} == {10, 3}
        # Shared edges: every Parana border edge is linked to an area and the net.
        area_edge = db.ltyp("area-edge")
        net_edge = db.ltyp("net-edge")
        shared = {
            identifier
            for link in net_edge
            for identifier in link.identifiers
            if identifier.startswith("e") and area_edge.links_of(identifier)
        }
        assert len(shared) >= 5

    def test_scaled_generator_is_valid_and_scales(self):
        small = build_geography(n_states=5, edges_per_state=3, n_rivers=2)
        large = build_geography(n_states=20, edges_per_state=3, n_rivers=2)
        assert small.is_valid() and large.is_valid()
        assert large.atom_count() > small.atom_count()
        assert len(large.atyp("state")) == 20

    def test_scaled_generator_has_shared_border_edges(self):
        db = build_geography(n_states=6, edges_per_state=2, n_rivers=1)
        descriptions = mt_state_description()
        molecule_type = molecule_type_definition(
            db, "mt_state", MoleculeTypeDescription(*descriptions)
        )
        assert molecule_type.shared_atoms(), "ring topology must share border edges"

    def test_descriptions_helpers(self):
        atom_types, links = mt_state_description()
        assert atom_types[0] == "state"
        atom_types, links = point_neighborhood_description()
        assert atom_types[0] == "point"


class TestBomAndSyntheticDatasets:
    def test_bom_shape(self):
        db = build_bill_of_materials(depth=3, fan_out=2, n_roots=2)
        assert db.is_valid()
        assert len(root_parts(db)) == 2
        levels = {atom["level"] for atom in db.atyp("part")}
        assert levels == {0, 1, 2, 3}

    def test_bom_sharing(self):
        shared = build_bill_of_materials(depth=3, fan_out=3, share_every=2)
        plain = build_bill_of_materials(depth=3, fan_out=3, share_every=0)
        assert len(shared.atyp("part")) < len(plain.atyp("part"))

    def test_synthetic_network_reproducible(self):
        a = build_synthetic_network(seed=5)
        b = build_synthetic_network(seed=5)
        assert a.atom_count() == b.atom_count()
        assert a.link_count() == b.link_count()
        assert a.is_valid()

    def test_random_molecule_description_is_valid(self):
        db = build_synthetic_network(n_atom_types=5, seed=9)
        description = random_molecule_description(db, max_types=4, seed=2)
        molecule_type = molecule_type_definition(db, "random", description)
        assert len(molecule_type) == len(db.atyp(description.root))


class TestEndToEnd:
    def test_mql_equals_algebra_equals_relational(self, geo_db, mt_state_desc):
        """The same complex-object query through MQL, the algebra, and relational joins."""
        mql = execute(geo_db, "SELECT ALL FROM mt_state(state-area-edge-point) WHERE state.hectare > 800;")
        algebra = MoleculeAlgebra(geo_db)
        algebra_result = algebra.restrict(
            algebra.define("mt_state", mt_state_desc), attr("hectare", "state") > 800
        )
        mapping = map_database(geo_db)
        relational = assemble_complex_objects(
            mapping, mt_state_desc, root_predicate=lambda row: row["hectare"] > 800
        )
        roots_mql = {m.root_atom.identifier for m in mql}
        roots_algebra = {m.root_atom.identifier for m in algebra_result.molecule_type}
        roots_relational = {obj["_id"] for obj in relational.objects}
        assert roots_mql == roots_algebra == roots_relational == {"BA", "GO", "MG", "MS"}

    def test_storage_engine_round_trip(self, geo_db):
        """Database -> engine -> database snapshot preserves counts and queries."""
        engine = PrimaEngine.from_database(geo_db)
        snapshot = engine.to_database()
        assert snapshot.atom_count() == geo_db.atom_count()
        assert snapshot.link_count() == geo_db.link_count()
        before = len(engine.query("SELECT ALL FROM state-area;"))
        engine.store_atom("state", identifier="TO", name="Tocantins", code="TO", hectare=500)
        after = len(engine.query("SELECT ALL FROM state-area;"))
        assert after == before + 1

    def test_nested_export_of_query_result(self, geo_db):
        """MQL result -> NF² nested relation (for hierarchical results)."""
        result = execute(geo_db, "SELECT ALL FROM state-area-edge;")
        nested = molecule_type_to_nested(result.molecule_type)
        assert len(nested) == 10

    def test_recursive_and_flat_queries_on_same_engine(self):
        bom = build_bill_of_materials(depth=3, fan_out=2, n_roots=1)
        engine = PrimaEngine.from_database(bom)
        flat = engine.query("SELECT ALL FROM part;")
        assert len(flat) == len(bom.atyp("part"))
        recursive = engine.query("SELECT ALL FROM RECURSIVE part [composition] DOWN WHERE part.level = 0;")
        assert len(recursive) == 1
        assert len(recursive.molecules[0]) == len(bom.atyp("part"))

    def test_dynamic_object_definition_requires_no_schema_change(self, geo_db):
        """The same database answers structurally different molecule queries unchanged."""
        schema_before = (set(geo_db.atom_type_names), set(geo_db.link_type_names))
        for statement in (
            "SELECT ALL FROM state-area-edge-point;",
            "SELECT ALL FROM point-edge-(area-state,net-river);",
            "SELECT ALL FROM river-net-edge-point;",
            "SELECT ALL FROM city-point;",
        ):
            result = execute(geo_db, statement)
            assert len(result) > 0
        assert (set(geo_db.atom_type_names), set(geo_db.link_type_names)) == schema_before

    def test_insert_then_query_new_molecule(self, geo_db, mt_state_desc):
        from repro.manipulation import insert_molecule

        insert_molecule(
            geo_db,
            mt_state_desc,
            {
                "name": "Tocantins",
                "code": "TO",
                "hectare": 950,
                "area": [{"area_id": "a_TO", "kind": "state-border",
                          "edge": [{"edge_id": "e_TO", "length": 4.0,
                                    "point": [{"name": "TO-p", "x": 0.0, "y": 0.0}]}]}],
            },
        )
        result = execute(geo_db, "SELECT ALL FROM mt_state(state-area-edge-point) WHERE state.hectare > 900;")
        assert "TO" in {m.root_atom["code"] for m in result}
