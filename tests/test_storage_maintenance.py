"""Incremental cache maintenance: change events, deltas, and coherence.

The storage engine subscribes to its snapshot's change events and folds
every write into the cached snapshot, the hash-index pool, the atom network
and the planner statistics — instead of invalidating and rebuilding them.
These tests assert:

* the core emits the five event kinds in mutation order;
* an incrementally maintained atom network is indistinguishable from a
  freshly rebuilt one after arbitrary write sequences;
* the executor's index pool answers correctly across writes without being
  rebuilt, and its generation stamp tracks the engine's;
* ``rebuild`` mode still behaves like the historical invalidate-everything
  engine, while ``incremental`` mode keeps build counters at 1 in steady
  state.
"""

from __future__ import annotations

import pytest

from repro.core.database import Database
from repro.core.events import (
    ATOM_DELETED,
    ATOM_INSERTED,
    ATOM_MODIFIED,
    LINK_CONNECTED,
    LINK_DISCONNECTED,
)
from repro.datasets.geography import load_geography
from repro.storage.engine import PrimaEngine
from repro.storage.network import AtomNetwork


def build_tiny() -> Database:
    db = Database("tiny")
    db.define_atom_type("author", {"name": "string", "country": "string"})
    db.define_atom_type("book", {"title": "string", "year": "integer"})
    db.define_link_type("wrote", "author", "book")
    return db


class TestChangeEvents:
    def test_event_kinds_in_mutation_order(self):
        db = build_tiny()
        events = []
        db.subscribe(events.append)
        author = db.insert_atom("author", identifier="a1", name="Codd", country="UK")
        book = db.insert_atom("book", identifier="b1", title="RM", year=1970)
        db.connect("wrote", author, book)
        db.atyp("author").replace(author.with_values(country="US"))
        db.ltyp("wrote").remove_atom("b1")
        db.atyp("book").remove("b1")
        assert [event.kind for event in events] == [
            ATOM_INSERTED,
            ATOM_INSERTED,
            LINK_CONNECTED,
            ATOM_MODIFIED,
            LINK_DISCONNECTED,
            ATOM_DELETED,
        ]
        assert events[3].previous["country"] == "UK"
        assert events[3].atom["country"] == "US"

    def test_unsubscribe_stops_delivery(self):
        db = build_tiny()
        events = []
        db.subscribe(events.append)
        db.unsubscribe(events.append)
        db.insert_atom("author", name="X", country="Y")
        assert events == []

    def test_types_added_after_subscription_are_covered(self):
        db = build_tiny()
        events = []
        db.subscribe(events.append)
        db.define_atom_type("publisher", {"name": "string"})
        db.insert_atom("publisher", name="ACM")
        assert [event.kind for event in events] == [ATOM_INSERTED]
        assert events[0].type_name == "publisher"


def assert_networks_equal(maintained: AtomNetwork, rebuilt: AtomNetwork) -> None:
    assert len(maintained) == len(rebuilt)
    for atom_type in rebuilt.database.atom_types:
        for atom in atom_type:
            identifier = atom.identifier
            assert maintained.neighbours(identifier) == rebuilt.neighbours(identifier)
            assert maintained.atom_type_of(identifier) == rebuilt.atom_type_of(identifier)
            for link_type in rebuilt.database.link_types:
                assert maintained.neighbours_via(
                    link_type.name, identifier
                ) == rebuilt.neighbours_via(link_type.name, identifier)


class TestIncrementalNetwork:
    def test_maintained_network_matches_rebuilt(self):
        db = load_geography()
        network = AtomNetwork(db)
        db.subscribe(network.apply_event)
        # A write burst touching every event kind.
        to = db.insert_atom("state", identifier="TO", name="Tocantins", code="TO", hectare=500)
        area = db.insert_atom("area", identifier="a_to", area_id="a_to", kind="state-border")
        db.connect("state-area", to, area)
        db.atyp("state").replace(to.with_values(hectare=900))
        for link_type in db.link_types_of("state"):
            link_type.remove_atom("RJ")
        db.atyp("state").remove("RJ")
        assert_networks_equal(network, AtomNetwork(db))
        assert network.rebuilds == 1  # only the constructor pass

    def test_multi_link_type_pair_survives_single_disconnect(self):
        """The untyped adjacency keeps a pair connected while any link remains."""
        db = Database("multi")
        db.define_atom_type("a", {"x": "integer"})
        db.define_atom_type("b", {"x": "integer"})
        db.define_link_type("l1", "a", "b")
        db.define_link_type("l2", "a", "b")
        first = db.insert_atom("a", identifier="a1", x=1)
        second = db.insert_atom("b", identifier="b1", x=2)
        link1 = db.connect("l1", first, second)
        db.connect("l2", first, second)
        network = AtomNetwork(db)
        db.subscribe(network.apply_event)
        db.ltyp("l1").remove(link1)
        assert network.neighbours("a1") == frozenset({"b1"})
        db.ltyp("l2").remove_atom("a1")
        assert network.neighbours("a1") == frozenset()
        assert_networks_equal(network, AtomNetwork(db))


class TestEngineMaintenance:
    @pytest.fixture()
    def prima(self):
        return PrimaEngine.from_database(load_geography())

    def test_steady_state_has_no_rebuilds(self, prima):
        prima.query("SELECT ALL FROM state-area WHERE state.code = 'SP';")  # warm caches
        for i in range(5):
            prima.store_atom("state", identifier=f"S{i}", name=f"S{i}", code=f"S{i}", hectare=i)
            prima.query("SELECT ALL FROM state-area WHERE state.code = 'SP';")
            prima.delete_atom("state", f"S{i}")
        report = prima.maintenance_statistics()
        assert report["snapshot_builds"] == 1
        assert report["network_builds"] == 1
        assert report["interpreter_builds"] == 1
        assert report["network_rebuilds"] == 1  # the constructor pass only
        assert report["events_applied"] == 10
        assert report["index_generation"] == report["generation"]

    def test_rebuild_mode_invalidates_on_every_write(self):
        prima = PrimaEngine.from_database(load_geography(), maintenance="rebuild")
        prima.query("SELECT ALL FROM state-area WHERE state.code = 'SP';")
        for i in range(3):
            prima.store_atom("state", identifier=f"S{i}", name=f"S{i}", code=f"S{i}", hectare=i)
            prima.query("SELECT ALL FROM state-area WHERE state.code = 'SP';")
        report = prima.maintenance_statistics()
        assert report["snapshot_builds"] == 4
        assert report["interpreter_builds"] == 4

    def test_modes_agree_on_query_results(self):
        statements = [
            "INSERT state - area VALUES {name: 'T', code: 'TO', hectare: 500, "
            "area: {area_id: 'a_to', kind: 'state-border'}};",
            "MODIFY state FROM state - area SET hectare = 901 WHERE state.code = 'TO';",
            "SELECT ALL FROM state-area WHERE state.hectare > 800;",
            "DELETE FROM state - area WHERE state.code = 'TO';",
            "SELECT ALL FROM state-area;",
        ]
        results = {}
        for mode in ("incremental", "rebuild"):
            engine = PrimaEngine.from_database(load_geography(), maintenance=mode)
            sizes = []
            for statement in statements:
                sizes.append(len(engine.query(statement)))
            results[mode] = (sizes, engine.statistics()["atoms"], engine.statistics()["links"])
        assert results["incremental"] == results["rebuild"]

    def test_index_pool_maintained_across_writes(self, prima):
        prima.query("SELECT ALL FROM state-area WHERE state.code = 'SP';")  # builds index
        builds_before = prima.maintenance_statistics()["index_builds"]
        prima.store_atom("state", identifier="ZZ", name="Z", code="ZZ", hectare=1)
        prima.store_atom("area", identifier="a_zz", area_id="a_zz", kind="state-border")
        prima.connect("state-area", "ZZ", "a_zz")
        hit = prima.query("SELECT ALL FROM state-area WHERE state.code = 'ZZ';")
        assert len(hit) == 1
        assert hit.counters.index_lookups == 1
        prima.delete_atom("state", "ZZ")
        miss = prima.query("SELECT ALL FROM state-area WHERE state.code = 'ZZ';")
        assert len(miss) == 0
        assert prima.maintenance_statistics()["index_builds"] == builds_before

    def test_dml_mirrors_into_stores_and_network(self, prima):
        prima.network()  # warm the network cache
        prima.query(
            "INSERT state - area VALUES {name: 'T', code: 'TO', hectare: 500, "
            "area: {area_id: 'a_to', kind: 'state-border'}};"
        )
        state = prima.lookup("state", "code", "TO")[0]
        assert prima.neighbours("state-area", state.identifier)
        assert_networks_equal(prima.network(), AtomNetwork(prima.to_database()))
        prima.query("DELETE FROM state - area WHERE state.code = 'TO';")
        assert prima.lookup("state", "code", "TO") == ()
        assert_networks_equal(prima.network(), AtomNetwork(prima.to_database()))

    def test_planner_statistics_follow_writes(self, prima):
        # Force statistics collection (a rewrite fires for this statement).
        prima.plan("SELECT ALL FROM state-area WHERE state.code = 'SP';")
        planner = prima.interpreter().planner
        before = planner.statistics.atom_counts["state"]
        prima.store_atom("state", identifier="Q1", name="Q", code="Q1", hectare=5)
        assert planner.statistics.atom_counts["state"] == before + 1
        prima.delete_atom("state", "Q1")
        assert planner.statistics.atom_counts["state"] == before

    def test_generation_advances_without_caches(self):
        engine = PrimaEngine("fresh")
        engine.create_atom_type("a", {"x": "integer"})
        generation = engine.generation
        engine.store_atom("a", x=1)
        assert engine.generation == generation + 1

    def test_rejected_link_leaves_store_and_snapshot_agreeing(self):
        """Regression: a cardinality rejection must undo the store write too."""
        from repro.core.link import Cardinality
        from repro.exceptions import CardinalityError

        engine = PrimaEngine("c")
        engine.create_atom_type("a", {"x": "integer"})
        engine.create_atom_type("b", {"x": "integer"})
        engine.create_link_type("ab", "a", "b", cardinality=Cardinality.ONE_TO_ONE)
        first = engine.store_atom("a", x=1)
        one = engine.store_atom("b", x=1)
        other = engine.store_atom("b", x=2)
        engine.to_database()  # live snapshot: cardinality enforced on mirror
        engine.connect("ab", first, one)
        with pytest.raises(CardinalityError):
            engine.connect("ab", first, other)
        assert engine.neighbours("ab", first.identifier) == (one.identifier,)
        assert len(engine.to_database().ltyp("ab")) == 1

    def test_write_through_stale_handle_reaches_the_stores(self, prima):
        """Regression: DML through a handle invalidated by DDL must not be lost.

        The discarded snapshot stays subscribed — writes through it still
        mirror into the stores, they just degrade to invalidate-on-next-read
        instead of incremental maintenance.
        """
        held = prima.interpreter()
        prima.create_atom_type("annotation", {"text": "string"})  # DDL invalidates
        held.execute(
            "INSERT state - area VALUES {name: 'Late', code: 'LL', hectare: 7, "
            "area: {area_id: 'a_ll', kind: 'k'}};"
        )
        assert len(prima.lookup("state", "code", "LL")) == 1
        fresh = prima.query("SELECT ALL FROM state-area WHERE state.code = 'LL';")
        assert len(fresh) == 1
