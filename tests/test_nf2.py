"""Unit tests for the NF² baseline: nested relations, NEST/UNNEST, and the molecule mapping."""

import pytest

from repro.core import molecule_type_definition
from repro.exceptions import AlgebraError
from repro.nf2 import (
    NestedRelation,
    NestedSchema,
    molecule_type_to_nested,
    nest,
    nested_duplication_factor,
    nf2_difference,
    nf2_project,
    nf2_select,
    nf2_union,
    unnest,
)
from repro.nf2.algebra import NF2Algebra


@pytest.fixture()
def flat():
    schema = NestedSchema(("state", "edge_id", "length"))
    return NestedRelation(
        "borders",
        schema,
        [
            {"state": "SP", "edge_id": "e1", "length": 10.0},
            {"state": "SP", "edge_id": "e2", "length": 12.0},
            {"state": "MG", "edge_id": "e2", "length": 12.0},
            {"state": "MG", "edge_id": "e3", "length": 8.0},
        ],
    )


class TestNestedSchema:
    def test_attribute_names_and_depth(self):
        inner = NestedSchema(("edge_id",))
        outer = NestedSchema(("state",), (("edges", inner),))
        assert outer.attribute_names == ("state", "edges")
        assert outer.depth() == 2
        assert inner.is_flat() and not outer.is_flat()

    def test_nested_lookup(self):
        inner = NestedSchema(("edge_id",))
        outer = NestedSchema(("state",), (("edges", inner),))
        assert outer.nested_schema("edges") is inner
        assert outer.is_nested("edges") and not outer.is_nested("state")
        with pytest.raises(AlgebraError):
            outer.nested_schema("missing")

    def test_duplicate_names_rejected(self):
        with pytest.raises(Exception):
            NestedSchema(("a", "a"))


class TestNestedRelation:
    def test_set_semantics_with_nested_values(self):
        inner = NestedSchema(("x",))
        schema = NestedSchema(("k",), (("items", inner),))
        relation = NestedRelation("r", schema)
        assert relation.insert({"k": 1, "items": [{"x": 1}, {"x": 2}]})
        assert not relation.insert({"k": 1, "items": [{"x": 2}, {"x": 1}]})  # same set
        assert relation.insert({"k": 1, "items": [{"x": 3}]})
        assert len(relation) == 2

    def test_unknown_attribute_rejected(self, flat):
        with pytest.raises(AlgebraError):
            flat.insert({"state": "SP", "bogus": 1})

    def test_nested_attribute_requires_list(self):
        schema = NestedSchema(("k",), (("items", NestedSchema(("x",))),))
        relation = NestedRelation("r", schema)
        with pytest.raises(AlgebraError):
            relation.insert({"k": 1, "items": {"x": 1}})

    def test_flat_tuple_count(self):
        schema = NestedSchema(("k",), (("items", NestedSchema(("x",))),))
        relation = NestedRelation("r", schema, [{"k": 1, "items": [{"x": 1}, {"x": 2}]}])
        assert relation.flat_tuple_count() == 3


class TestNestUnnest:
    def test_nest_groups_rows(self, flat):
        nested = nest(flat, ["edge_id", "length"], into="edges")
        assert len(nested) == 2
        sp = next(row for row in nested if row["state"] == "SP")
        assert {edge["edge_id"] for edge in sp["edges"]} == {"e1", "e2"}

    def test_nest_rejects_unknown_or_existing_names(self, flat):
        with pytest.raises(AlgebraError):
            nest(flat, ["missing"], into="edges")
        with pytest.raises(AlgebraError):
            nest(flat, ["edge_id"], into="state")

    def test_unnest_flattens(self, flat):
        nested = nest(flat, ["edge_id", "length"], into="edges")
        flattened = unnest(nested, "edges")
        assert len(flattened) == 4
        assert set(flattened.schema.atomic) == {"state", "edge_id", "length"}

    def test_unnest_requires_nested_attribute(self, flat):
        with pytest.raises(AlgebraError):
            unnest(flat, "state")

    def test_unnest_nest_round_trip(self, flat):
        nested = nest(flat, ["edge_id", "length"], into="edges")
        round_trip = unnest(nested, "edges")
        original_rows = {tuple(sorted(row.items())) for row in flat}
        returned_rows = {tuple(sorted(row.items())) for row in round_trip}
        assert original_rows == returned_rows

    def test_unnest_drops_empty_groups(self):
        schema = NestedSchema(("k",), (("items", NestedSchema(("x",))),))
        relation = NestedRelation("r", schema, [{"k": 1, "items": []}, {"k": 2, "items": [{"x": 1}]}])
        assert len(unnest(relation, "items")) == 1

    def test_shared_subobjects_duplicated_by_nesting(self, flat):
        nested = nest(flat, ["edge_id", "length"], into="edges")
        copies = sum(
            1 for row in nested for edge in row["edges"] if edge["edge_id"] == "e2"
        )
        assert copies == 2  # e2 is stored once per owning state


class TestLiftedOperations:
    def test_select_over_nested(self, flat):
        nested = nest(flat, ["edge_id", "length"], into="edges")
        long_borders = nf2_select(nested, lambda row: len(row["edges"]) >= 2)
        assert len(long_borders) == 2

    def test_project(self, flat):
        nested = nest(flat, ["edge_id", "length"], into="edges")
        projected = nf2_project(nested, ["state"])
        assert projected.schema.attribute_names == ("state",)
        with pytest.raises(AlgebraError):
            nf2_project(nested, ["missing"])

    def test_union_and_difference(self, flat):
        nested = nest(flat, ["edge_id", "length"], into="edges")
        sp_only = nf2_select(nested, lambda row: row["state"] == "SP")
        assert len(nf2_union(nested, sp_only)) == 2
        assert len(nf2_difference(nested, sp_only)) == 1
        with pytest.raises(AlgebraError):
            nf2_union(nested, flat)

    def test_facade(self, flat):
        algebra = NF2Algebra()
        nested = algebra.nest(flat, ["edge_id", "length"], "edges")
        assert len(algebra.unnest(nested, "edges")) == 4
        assert len(algebra.select(nested, lambda row: True)) == 2
        assert len(algebra.project(nested, ["state"])) == 2
        assert len(algebra.union(nested, nested)) == 2
        assert len(algebra.difference(nested, nested)) == 0


class TestMoleculeMapping:
    def test_hierarchical_molecule_type_maps(self, geo_db, mt_state_desc):
        molecule_type = molecule_type_definition(geo_db, "mt_state", mt_state_desc)
        nested = molecule_type_to_nested(molecule_type)
        assert len(nested) == len(molecule_type)
        assert nested.schema.depth() == 4  # state / area / edge / point

    def test_shared_subobjects_are_duplicated(self, geo_db, mt_state_desc):
        molecule_type = molecule_type_definition(geo_db, "mt_state", mt_state_desc)
        nested = molecule_type_to_nested(molecule_type)
        factor = nested_duplication_factor(molecule_type, nested)
        assert factor > 1.0

    def test_network_structure_rejected_in_strict_mode(self, geo_db, point_neighborhood_desc):
        # point-neighborhood is a DAG (edge has two parents... actually edge has
        # one parent; area/net/state/river all single-parent) — build a true DAG:
        from repro.core.molecule import MoleculeTypeDescription

        diamond = MoleculeTypeDescription(
            ["point", "edge", "area", "state", "net"],
            [
                ("edge-point", "point", "edge"),
                ("area-edge", "edge", "area"),
                ("state-area", "area", "state"),
                ("net-edge", "edge", "net"),
            ],
        )
        molecule_type = molecule_type_definition(geo_db, "pn", diamond)
        nested = molecule_type_to_nested(molecule_type)  # tree — fine
        assert len(nested) == len(molecule_type)

    def test_non_hierarchical_structure_raises(self):
        """A DAG structure (one atom type with two parents) cannot be nested strictly."""
        from repro.core.database import Database
        from repro.core.molecule import MoleculeTypeDescription

        db = Database("diamond")
        for name in ("r", "a", "b", "c"):
            db.define_atom_type(name, {"k": "string"})
        db.define_link_type("r-a", "r", "a")
        db.define_link_type("r-b", "r", "b")
        db.define_link_type("a-c", "a", "c")
        db.define_link_type("b-c", "b", "c")
        root = db.insert_atom("r", identifier="r1", k="r")
        a = db.insert_atom("a", identifier="a1", k="a")
        b = db.insert_atom("b", identifier="b1", k="b")
        c = db.insert_atom("c", identifier="c1", k="c")
        db.connect("r-a", root, a)
        db.connect("r-b", root, b)
        db.connect("a-c", a, c)
        db.connect("b-c", b, c)
        diamond = MoleculeTypeDescription(
            ["r", "a", "b", "c"],
            [("r-a", "r", "a"), ("r-b", "r", "b"), ("a-c", "a", "c"), ("b-c", "b", "c")],
        )
        molecule_type = molecule_type_definition(db, "diamond", diamond)
        with pytest.raises(AlgebraError):
            molecule_type_to_nested(molecule_type, strict=True)
        # Non-strict mode picks one parent per shared atom and succeeds.
        nested = molecule_type_to_nested(molecule_type, strict=False)
        assert len(nested) == 1
