"""Unit tests for the manipulation facilities and the algebraic optimizer."""

import pytest

from repro import Database, attr, molecule_type_definition
from repro.core.molecule import MoleculeTypeDescription
from repro.exceptions import ManipulationError, TransactionError
from repro.manipulation import (
    Transaction,
    delete_molecule,
    insert_molecule,
    modify_atom,
)
from repro.optimizer import (
    CostModel,
    DatabaseStatistics,
    DefinePlan,
    Planner,
    ProjectPlan,
    RestrictPlan,
    execute_plan,
)
from repro.optimizer.plans import describe_plan, plan_description
from repro.optimizer.rules import (
    choose_root_access,
    merge_restrictions,
    prune_structure,
    push_down_restriction,
    rewrite,
)
from repro.storage import PrimaEngine


@pytest.fixture()
def oeuvre_desc():
    return MoleculeTypeDescription(["author", "book"], [("wrote", "author", "book")])


class TestInsertMolecule:
    def test_insert_nested_object(self, tiny_db, oeuvre_desc):
        molecule = insert_molecule(
            tiny_db,
            oeuvre_desc,
            {"name": "Date", "country": "UK", "book": [{"title": "Intro", "year": 1990}]},
        )
        assert len(molecule) == 2
        assert tiny_db.atyp("author").get(molecule.root_atom.identifier) is not None
        assert len(tiny_db.ltyp("wrote")) == 5

    def test_insert_with_shared_existing_atom(self, tiny_db, oeuvre_desc):
        molecule = insert_molecule(
            tiny_db,
            oeuvre_desc,
            {"name": "Date", "country": "UK", "book": [{"_id": "b3"}]},
        )
        assert "b3" in molecule.atom_identifiers
        assert len(tiny_db.atyp("book")) == 3  # no new book created

    def test_insert_unknown_attribute_rejected(self, tiny_db, oeuvre_desc):
        with pytest.raises(ManipulationError):
            insert_molecule(tiny_db, oeuvre_desc, {"name": "X", "isbn": "1"})

    def test_insert_single_child_as_mapping(self, tiny_db, oeuvre_desc):
        molecule = insert_molecule(
            tiny_db, oeuvre_desc, {"name": "Date", "country": "UK", "book": {"title": "Solo", "year": 2000}}
        )
        assert len(molecule.atoms_of_type("book")) == 1


class TestDeleteMolecule:
    def test_delete_exclusive_molecule(self, tiny_db, oeuvre_desc):
        oeuvre = molecule_type_definition(tiny_db, "oeuvre", oeuvre_desc)
        ullman = oeuvre.find(name="Ullman")[0]
        stats = delete_molecule(tiny_db, ullman)
        # The root and the exclusive book b2 go away; the shared b3 survives.
        assert stats["atoms_removed"] == 2
        assert tiny_db.atyp("book").get("b3") is not None
        assert tiny_db.atyp("author").get("a2") is None
        assert tiny_db.is_valid()

    def test_delete_cascade_removes_shared(self, tiny_db, oeuvre_desc):
        oeuvre = molecule_type_definition(tiny_db, "oeuvre", oeuvre_desc)
        ullman = oeuvre.find(name="Ullman")[0]
        stats = delete_molecule(tiny_db, ullman, cascade=True)
        assert stats["atoms_removed"] == 3
        assert tiny_db.atyp("book").get("b3") is None
        assert tiny_db.is_valid()

    def test_no_dangling_links_after_delete(self, tiny_db, oeuvre_desc):
        oeuvre = molecule_type_definition(tiny_db, "oeuvre", oeuvre_desc)
        delete_molecule(tiny_db, oeuvre.find(name="Codd")[0])
        tiny_db.validate()


class TestModifyAtom:
    def test_modify_preserves_identity_and_links(self, tiny_db):
        modify_atom(tiny_db, "book", "b3", year=1986)
        assert tiny_db.atyp("book").get("b3")["year"] == 1986
        assert len(tiny_db.ltyp("wrote").links_of("b3")) == 2

    def test_modify_missing_atom(self, tiny_db):
        with pytest.raises(ManipulationError):
            modify_atom(tiny_db, "book", "nope", year=2000)

    def test_modify_domain_violation(self, tiny_db):
        with pytest.raises(ManipulationError):
            modify_atom(tiny_db, "book", "b1", year="nineteen-seventy")
        # The atom is still present and unchanged after the failed update.
        assert tiny_db.atyp("book").get("b1")["year"] == 1970


class TestTransactions:
    def test_commit_keeps_changes(self, tiny_db):
        with Transaction(tiny_db) as txn:
            atom = txn.insert_atom("author", name="Date", country="UK")
            txn.connect("wrote", atom, "b1")
        assert tiny_db.atyp("author").get(atom.identifier) is not None
        assert len(tiny_db.ltyp("wrote")) == 5

    def test_rollback_on_exception(self, tiny_db):
        before_atoms = tiny_db.atom_count()
        before_links = tiny_db.link_count()
        with pytest.raises(RuntimeError):
            with Transaction(tiny_db) as txn:
                atom = txn.insert_atom("author", name="Date", country="UK")
                txn.connect("wrote", atom, "b1")
                raise RuntimeError("boom")
        assert tiny_db.atom_count() == before_atoms
        assert tiny_db.link_count() == before_links

    def test_connect_existing_link_survives_rollback_and_stays_typed(self, tiny_db):
        """Re-connecting a linked pair records no undo and returns a typed link."""
        with pytest.raises(RuntimeError):
            with Transaction(tiny_db) as txn:
                link = txn.connect("wrote", "a1", "b1")  # pre-existing
                assert link.endpoint_of_type("author") == "a1"
                assert link.endpoint_of_type("book") == "b1"
                raise RuntimeError("boom")
        # The rollback must not have removed the pre-existing link.
        assert "b1" in tiny_db.ltyp("wrote").partners_of("a1")

    def test_explicit_rollback_of_delete_and_modify(self, tiny_db):
        txn = Transaction(tiny_db)
        txn.begin()
        txn.modify_atom("book", "b1", year=1999)
        txn.delete_atom("book", "b2")
        assert tiny_db.atyp("book").get("b2") is None
        undone = txn.rollback()
        assert undone == 2
        assert tiny_db.atyp("book").get("b1")["year"] == 1970
        assert tiny_db.atyp("book").get("b2") is not None
        assert len(tiny_db.ltyp("wrote")) == 4

    def test_transaction_misuse(self, tiny_db):
        txn = Transaction(tiny_db)
        with pytest.raises(TransactionError):
            txn.commit()
        with pytest.raises(TransactionError):
            txn.insert_atom("author", name="x", country="y")
        txn.begin()
        with pytest.raises(TransactionError):
            txn.begin()
        with pytest.raises(TransactionError):
            txn.delete_atom("book", "missing")
        txn.rollback()


class TestOptimizerRules:
    def plan(self, mt_state_desc):
        return ProjectPlan(
            RestrictPlan(DefinePlan("mt_state", mt_state_desc), attr("hectare", "state") > 800),
            ("state", "area"),
        )

    def test_merge_restrictions(self, mt_state_desc):
        nested = RestrictPlan(
            RestrictPlan(DefinePlan("mt", mt_state_desc), attr("hectare", "state") > 800),
            attr("code", "state") != "BA",
        )
        rewritten = merge_restrictions(nested)
        assert rewritten.applied_rules == ("merge_restrictions",)
        assert isinstance(rewritten.plan, RestrictPlan)
        assert isinstance(rewritten.plan.child, DefinePlan)

    def test_push_down_root_only_restriction(self, mt_state_desc):
        rewritten = push_down_restriction(
            RestrictPlan(DefinePlan("mt", mt_state_desc), attr("hectare", "state") > 800)
        )
        assert rewritten.applied_rules == ("push_down_restriction",)
        assert isinstance(rewritten.plan, DefinePlan)
        assert rewritten.plan.root_filter is not None

    def test_push_down_skips_non_root_restriction(self, mt_state_desc):
        rewritten = push_down_restriction(
            RestrictPlan(DefinePlan("mt", mt_state_desc), attr("name", "point") == "pn")
        )
        assert rewritten.applied_rules == ()
        assert isinstance(rewritten.plan, RestrictPlan)

    def test_prune_structure_drops_unneeded_types(self, mt_state_desc):
        rewritten = prune_structure(self.plan(mt_state_desc))
        assert "prune_structure" in rewritten.applied_rules
        description = plan_description(rewritten.plan)
        assert set(description.atom_type_names) == {"state", "area"}

    def test_prune_keeps_restriction_types(self, mt_state_desc):
        plan = ProjectPlan(
            RestrictPlan(DefinePlan("mt", mt_state_desc), attr("length", "edge") > 5),
            ("state", "area"),
        )
        rewritten = prune_structure(plan)
        description = plan_description(rewritten.plan)
        assert "edge" in description.atom_type_names

    def test_prune_noop_without_projection(self, mt_state_desc):
        plan = RestrictPlan(DefinePlan("mt", mt_state_desc), attr("hectare", "state") > 800)
        assert prune_structure(plan).applied_rules == ()

    def test_rewrites_preserve_results(self, geo_db, mt_state_desc):
        plan = self.plan(mt_state_desc)
        rewritten = rewrite(plan)
        naive = execute_plan(geo_db, plan)
        optimized = execute_plan(geo_db, rewritten.plan)
        assert {m.root_atom.identifier for m in naive.molecule_type} == {
            m.root_atom.identifier for m in optimized.molecule_type
        }
        assert optimized.counters.atoms_touched <= naive.counters.atoms_touched

    def test_describe_plan(self, mt_state_desc):
        text = describe_plan(self.plan(mt_state_desc))
        assert "Π" in text and "Σ" in text and "α" in text


class TestCostModelAndPlanner:
    def test_statistics_collection(self, geo_db):
        statistics = DatabaseStatistics.collect(geo_db)
        assert statistics.atom_counts["state"] == 10
        assert statistics.link_counts["state-area"] == 10
        assert statistics.average_fanout("state-area", "state") == 1.0
        assert 0 < statistics.selectivity(attr("code", "state") == "SP") <= 0.2
        assert statistics.selectivity(attr("hectare", "state") > 800) == pytest.approx(1 / 3)

    def test_cost_model_prefers_filtered_plan(self, geo_db, mt_state_desc):
        model = CostModel(DatabaseStatistics.collect(geo_db))
        naive = RestrictPlan(DefinePlan("mt", mt_state_desc), attr("hectare", "state") > 800)
        pushed = push_down_restriction(naive).plan
        assert model.estimate(pushed) < model.estimate(naive)

    def test_planner_choice(self, geo_db, mt_state_desc):
        planner = Planner(geo_db)
        plan = ProjectPlan(
            RestrictPlan(DefinePlan("mt_state", mt_state_desc), attr("hectare", "state") > 800),
            ("state", "area"),
        )
        choice = planner.optimize(plan)
        assert choice.improvement >= 1.0
        assert choice.best is choice.optimized
        assert "push_down_restriction" in choice.applied_rules
        assert "α" in choice.explain()

    def test_planner_execute_best(self, geo_db, mt_state_desc):
        planner = Planner(geo_db)
        plan = RestrictPlan(DefinePlan("mt_state", mt_state_desc), attr("hectare", "state") > 800)
        execution = planner.execute_best(plan)
        assert len(execution.molecule_type) == 4


class TestRootAccessChoice:
    """Costed grid-vs-hash root access (``choose_root_access``).

    The scan historically always preferred the composite grid probe for
    multi-equality root filters; the rule overturns that whenever one
    attribute is selective enough that its hash bucket (plus residual
    post-filtering) beats the grid's per-dimension probe overhead.
    """

    def _device_db(self, count=200):
        db = Database("access")
        db.define_atom_type("device", {"serial": "string", "flag": "string"})
        for i in range(count):
            db.insert_atom(
                "device",
                identifier=f"d{i}",
                serial=f"S{i:04d}",
                flag="on" if i % 2 else "off",
            )
        return db

    def _device_plan(self):
        description = MoleculeTypeDescription(["device"], [])
        formula = (attr("serial", "device") == "S0007") & (attr("flag", "device") == "on")
        return RestrictPlan(DefinePlan("mt_device", description), formula)

    def test_cost_model_ranks_hash_and_grid(self):
        near_unique = DatabaseStatistics(
            atom_counts={"device": 1000},
            distinct_values={("device", "serial"): 1000, ("device", "flag"): 2},
        )
        access, chosen, alternative = CostModel(near_unique).root_access_choice(
            "device", ["serial", "flag"]
        )
        assert access == ("hash", "serial")
        assert chosen < alternative
        low_cardinality = DatabaseStatistics(
            atom_counts={"cell": 1000},
            distinct_values={("cell", "row"): 10, ("cell", "col"): 10},
        )
        access, chosen, alternative = CostModel(low_cardinality).root_access_choice(
            "cell", ["row", "col"]
        )
        assert access[0] == "grid"
        assert chosen < alternative

    def test_hash_wins_on_near_unique_attribute(self):
        db = self._device_db()
        statistics = DatabaseStatistics.collect(db)
        pushed = push_down_restriction(self._device_plan()).plan
        rewritten = choose_root_access(pushed, statistics)
        assert rewritten.applied_rules == ("choose_root_access",)
        assert rewritten.plan.root_access == ("hash", "serial")
        # Pinning the access method never changes results.
        naive = execute_plan(db, pushed)
        chosen = execute_plan(db, rewritten.plan)
        assert {m.root_atom.identifier for m in naive.molecule_type} == {
            m.root_atom.identifier for m in chosen.molecule_type
        } == {"d7"}

    def test_grid_keeps_low_cardinality_pairs(self):
        db = Database("access-grid")
        db.define_atom_type("cell", {"row": "integer", "col": "integer"})
        for i in range(400):
            db.insert_atom("cell", identifier=f"c{i}", row=i % 10, col=(i // 10) % 10)
        statistics = DatabaseStatistics.collect(db)
        description = MoleculeTypeDescription(["cell"], [])
        formula = (attr("row", "cell") == 3) & (attr("col", "cell") == 4)
        pushed = push_down_restriction(
            RestrictPlan(DefinePlan("mt_cell", description), formula)
        ).plan
        rewritten = choose_root_access(pushed, statistics)
        assert rewritten.applied_rules == ()
        assert rewritten.plan.root_access is None  # grid stays the scan default

    def test_engine_query_pins_hash_access_end_to_end(self):
        engine = PrimaEngine()
        engine.create_atom_type("device", {"serial": "string", "flag": "string"})
        for i in range(200):
            engine.store_atom(
                "device",
                identifier=f"d{i}",
                serial=f"S{i:04d}",
                flag="on" if i % 2 else "off",
            )
        statement = (
            "SELECT ALL FROM device "
            "WHERE device.serial = 'S0007' AND device.flag = 'on';"
        )
        result = engine.query(statement)
        assert [m.root_atom.identifier for m in result.molecules] == ["d7"]
        choice = engine.plan(statement)
        assert "choose_root_access" in choice.applied_rules
        assert "hash(serial)" in choice.explain()
