"""Interval-encoded structure index: correctness, maintenance, and planner wiring.

The structure index answers recursive closures with pre/post-interval range
scans (tree mode) or a compact-adjacency sweep (DAG/cycle mode) instead of
the hop-by-hop fixpoint loop.  Everything here is a parity obligation: the
accelerated path must return byte-identical molecules to the fixpoint path —
live at the head, inside BEGIN WORK transactions, and at pinned snapshot
generations — while the planner surfaces the choice through EXPLAIN.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.attributes import AtomTypeDescription, AttributeDescription
from repro.exceptions import StorageError, UnknownNameError
from repro.storage.engine import PrimaEngine
from repro.storage.index import GridIndex
from repro.storage.structure_index import StructureIndex, StructureIndexStore

RECURSIVE_ALL = "SELECT ALL FROM RECURSIVE part [composition] DOWN;"
RECURSIVE_UP = "SELECT ALL FROM RECURSIVE part [composition] UP;"

#: A small BOM forest: two roots, branching, one deep chain under p3.
TREE_EDGES = [
    ("p0", "p1"),
    ("p0", "p2"),
    ("p1", "p3"),
    ("p1", "p4"),
    ("p2", "p5"),
    ("p3", "p6"),
    ("p6", "p7"),
    ("p7", "p8"),
    ("p9", "p10"),
]


def part_description() -> AtomTypeDescription:
    return AtomTypeDescription(
        [
            AttributeDescription("part_no", "string"),
            AttributeDescription("kind", "string"),
            AttributeDescription("cost", "integer"),
        ]
    )


def build_engine(edges=TREE_EDGES, parts=12, index=True) -> PrimaEngine:
    engine = PrimaEngine()
    engine.create_atom_type("part", part_description())
    engine.create_link_type("composition", "part", "part")
    for i in range(parts):
        engine.store_atom(
            "part",
            identifier=f"p{i}",
            part_no=f"P{i:03d}",
            kind="assembly" if i % 3 == 0 else "piece",
            cost=i * 10,
        )
    for parent, child in edges:
        engine.connect("composition", parent, child)
    if index:
        engine.create_structure_index("part", "composition", "down")
    return engine


def canonical(result):
    """Order-independent form of a recursive result set.

    Atoms are keyed by their ``part_no`` value rather than their identifier:
    the surrogate counter is process-global, so two equivalent engines assign
    different auto-identifiers to MQL-inserted atoms.
    """
    entries = []
    for molecule in result.molecules:
        names = {atom.identifier: atom.get("part_no") for atom in molecule.atoms}
        entries.append(
            (
                names[molecule.root_atom.identifier],
                frozenset(names.values()),
                frozenset(
                    tuple(sorted(names[identifier] for identifier in link.identifiers))
                    for link in molecule.links
                ),
                tuple(
                    sorted((names[identifier], level) for identifier, level in molecule.levels.items())
                ),
            )
        )
    return sorted(entries)


def assert_parity(accelerated: PrimaEngine, baseline: PrimaEngine, statement: str):
    left = accelerated.query(statement)
    right = baseline.query(statement)
    assert canonical(left) == canonical(right)
    return left


# ------------------------------------------------------------------ unit level


class TestStructureIndexUnit:
    def test_tree_mode_range_scan(self):
        engine = build_engine()
        index = StructureIndex(("part", "composition", "down"))
        index.refresh(engine.to_database())
        assert index.tree
        members, links = index.closure("p0")
        identifiers = [identifier for identifier, _level, _link in members]
        assert identifiers[0] == "p0"
        assert set(identifiers) == {"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8"}
        levels = {identifier: level for identifier, level, _ in members}
        assert levels["p0"] == 0 and levels["p8"] == 5
        assert len(links) == 8

    def test_max_depth_bound(self):
        engine = build_engine()
        index = StructureIndex(("part", "composition", "down"))
        index.refresh(engine.to_database())
        members, _links = index.closure("p0", max_depth=1)
        assert {identifier for identifier, _l, _k in members} == {"p0", "p1", "p2"}

    def test_dag_falls_to_graph_mode(self):
        engine = build_engine(edges=TREE_EDGES + [("p2", "p3")], index=False)
        index = StructureIndex(("part", "composition", "down"))
        index.refresh(engine.to_database())
        assert not index.tree
        members, _links = index.closure("p2")
        assert "p6" in {identifier for identifier, _l, _k in members}

    def test_cycle_detected_on_rebuild(self):
        engine = build_engine(edges=TREE_EDGES + [("p8", "p0")], index=False)
        index = StructureIndex(("part", "composition", "down"))
        index.refresh(engine.to_database())
        assert not index.tree
        members, _links = index.closure("p3")
        # The cycle makes every chain member reachable, including back to p0.
        assert "p0" in {identifier for identifier, _l, _k in members}

    def test_incremental_leaf_graft_keeps_encoding(self):
        engine = build_engine()
        index = StructureIndex(("part", "composition", "down"))
        index.refresh(engine.to_database())
        builds = index.builds
        engine.store_atom("part", identifier="p99", part_no="P099", kind="piece", cost=0)
        engine.connect("composition", "p8", "p99")
        # Drive the index directly: a fresh atom plus a leaf graft patch in place.
        from repro.core.events import ATOM_INSERTED, LINK_CONNECTED, ChangeEvent

        db = engine.to_database()
        atom = db.atyp("part").get("p99")
        link = next(
            link
            for link in db.ltyp("composition")
            if link.identifiers == frozenset({"p8", "p99"})
        )
        index.apply_event(ChangeEvent(ATOM_INSERTED, "part", atom=atom))
        index.apply_event(ChangeEvent(LINK_CONNECTED, "composition", link=link))
        assert not index.stale
        assert index.builds == builds
        members, _links = index.closure("p7")
        assert {identifier for identifier, _l, _k in members} == {"p7", "p8", "p99"}

    def test_subtree_graft_marks_stale(self):
        engine = build_engine()
        index = StructureIndex(("part", "composition", "down"))
        index.refresh(engine.to_database())
        from repro.core.events import LINK_CONNECTED, ChangeEvent

        engine.connect("composition", "p5", "p9")  # p9 has a subtree (p10)
        db = engine.to_database()
        link = next(
            link
            for link in db.ltyp("composition")
            if link.identifiers == frozenset({"p5", "p9"})
        )
        index.apply_event(ChangeEvent(LINK_CONNECTED, "composition", link=link))
        assert index.stale
        assert index.gap_events >= 1
        assert index.closure("p0") is None  # stale indexes refuse to answer

    def test_store_registration_validation(self):
        store = StructureIndexStore()
        with pytest.raises(StorageError):
            store.register("part", "composition", "sideways")
        store.register("part", "composition", "down")
        store.register("part", "composition", "down")  # idempotent
        assert store.registered() == (("part", "composition", "down"),)

    def test_engine_rejects_unrelated_link_type(self):
        engine = PrimaEngine()
        engine.create_atom_type("part", part_description())
        engine.create_atom_type(
            "supplier", AtomTypeDescription([AttributeDescription("name", "string")])
        )
        engine.create_link_type("composition", "part", "part")
        engine.create_link_type("supplies", "supplier", "part")
        with pytest.raises(UnknownNameError):
            engine.create_structure_index("part", "nope")
        with pytest.raises(StorageError):
            engine.create_structure_index("supplier", "composition")
        engine.create_structure_index("part", "supplies")  # part is an endpoint


# ----------------------------------------------------------------- query level


class TestAcceleratedQueries:
    def test_full_expansion_parity(self):
        assert_parity(build_engine(), build_engine(index=False), RECURSIVE_ALL)

    def test_up_direction_parity(self):
        accelerated = build_engine()
        accelerated.create_structure_index("part", "composition", "up")
        assert_parity(accelerated, build_engine(index=False), RECURSIVE_UP)

    def test_selective_where_parity_and_pruning(self):
        accelerated = build_engine()
        accelerated.query(RECURSIVE_ALL)  # build the index
        statement = (
            "SELECT ALL FROM RECURSIVE part [composition] DOWN "
            "WHERE part.part_no = 'P008';"
        )
        result = assert_parity(accelerated, build_engine(index=False), statement)
        # Only the six ancestors-or-self of p8 qualify; the other six roots
        # must have been pruned by the interval containment test, never
        # materialized.
        assert len(result.molecules) == 6
        assert result.counters.molecules_derived == 6

    def test_dag_and_cycle_parity(self):
        dag_edges = TREE_EDGES + [("p2", "p3")]
        assert_parity(
            build_engine(edges=dag_edges),
            build_engine(edges=dag_edges, index=False),
            RECURSIVE_ALL,
        )
        cyc_edges = TREE_EDGES + [("p8", "p0")]
        assert_parity(
            build_engine(edges=cyc_edges),
            build_engine(edges=cyc_edges, index=False),
            RECURSIVE_ALL,
        )

    def test_parity_across_dml(self):
        accelerated = build_engine()
        baseline = build_engine(index=False)
        accelerated.query(RECURSIVE_ALL)
        for engine in (accelerated, baseline):
            engine.store_atom("part", identifier="p77", part_no="P077", kind="piece", cost=7)
            engine.connect("composition", "p4", "p77")
            engine.delete_atom("part", "p8")  # drops the p7→p8 link too
        assert_parity(accelerated, baseline, RECURSIVE_ALL)

    def test_parity_inside_transaction(self):
        accelerated = build_engine()
        baseline = build_engine(index=False)
        accelerated.query(RECURSIVE_ALL)
        for engine in (accelerated, baseline):
            engine.query("BEGIN WORK;")
            engine.query("INSERT part VALUES {part_no: 'P500', kind: 'piece', cost: 5};")
        assert_parity(accelerated, baseline, RECURSIVE_ALL)  # uncommitted view
        for engine in (accelerated, baseline):
            engine.query("COMMIT WORK;")
        assert_parity(accelerated, baseline, RECURSIVE_ALL)

    def test_pinned_snapshot_ignores_head_writes(self):
        accelerated = build_engine()
        accelerated.query(RECURSIVE_ALL)
        handle = accelerated.snapshot_at()
        try:
            before = canonical(handle.query(RECURSIVE_ALL))
            accelerated.connect("composition", "p8", "p9")
            # The pinned read must not see the new edge — the store detects
            # the generation mismatch and falls back to the fixpoint loop.
            assert canonical(handle.query(RECURSIVE_ALL)) == before
            assert accelerated.maintenance_report()["structure_snapshot_gaps"] >= 1
        finally:
            handle.release()
        head = canonical(accelerated.query(RECURSIVE_ALL))
        assert head != before

    def test_maintenance_report_counters(self):
        engine = build_engine()
        engine.query(RECURSIVE_ALL)
        report = engine.maintenance_report()
        assert report["structure_indexes"] == 1
        assert report["structure_builds"] >= 1
        assert report["structure_gap_events"] >= 0
        assert report["structure_generation"] == report["generation"]


# ------------------------------------------------------------------- planner


class TestPlannerIntegration:
    def test_explain_reports_interval_choice(self):
        engine = build_engine()
        engine.query(RECURSIVE_ALL)
        explanation = engine.query("EXPLAIN " + RECURSIVE_ALL).explanation
        assert "accelerate_recursion" in explanation
        assert "interval scan" in explanation
        assert "interval index part via composition down" in explanation
        assert "sample intervals" in explanation

    def test_explain_reports_observed_depth_and_closure(self):
        engine = build_engine()
        engine.query(RECURSIVE_ALL)
        explanation = engine.query("EXPLAIN " + RECURSIVE_ALL).explanation
        assert "observed depth" in explanation
        assert "closure ≈" in explanation

    def test_explain_without_observations_reports_bounds(self):
        engine = build_engine(index=False)
        explanation = engine.query("EXPLAIN " + RECURSIVE_ALL).explanation
        assert "no observed runs yet" in explanation
        assert "estimated depth ≤" in explanation

    def test_interval_plan_estimated_cheaper(self):
        engine = build_engine()
        engine.query(RECURSIVE_ALL)
        choice = engine.query("EXPLAIN " + RECURSIVE_ALL).plan_choice
        assert choice.optimized_cost < choice.original_cost
        assert "accelerate_recursion" in choice.applied_rules


# ------------------------------------------------------------------ grid index


class TestGridIndex:
    def test_requires_two_attributes(self):
        with pytest.raises(StorageError):
            GridIndex("part", ["part_no"])

    def test_exact_and_partial_lookup(self):
        engine = build_engine(index=False)
        grid = GridIndex("part", ["kind", "cost"])
        for atom in engine.to_database().atyp("part"):
            grid.insert(atom)
        exact = grid.lookup({"kind": "assembly", "cost": 0})
        assert exact == {"p0"}
        partial = grid.lookup({"kind": "assembly"})
        assert partial == {"p0", "p3", "p6", "p9"}
        with pytest.raises(StorageError):
            grid.lookup({"nope": 1})

    def test_remove(self):
        engine = build_engine(index=False)
        grid = GridIndex("part", ["kind", "cost"])
        for atom in engine.to_database().atyp("part"):
            grid.insert(atom)
        grid.remove("p0")
        assert grid.lookup({"kind": "assembly", "cost": 0}) == set()
        assert "p0" not in grid

    def test_composite_predicate_uses_grid(self):
        engine = build_engine(index=False)
        statement = (
            "SELECT ALL FROM part WHERE part.kind = 'assembly' AND part.cost = 30;"
        )
        result = engine.query(statement)
        assert [m.root_atom.identifier for m in result.molecules] == ["p3"]
        # The composite equality pair resolves through one grid cell, not a
        # full scan: exactly one candidate is materialized.
        assert result.counters.molecules_derived == 1


# ------------------------------------------------------------------ durability


class TestDurability:
    def test_wal_replay_restores_registration(self, tmp_path):
        from repro.storage.wal import DurabilityConfig

        config = DurabilityConfig(tmp_path)
        durable = PrimaEngine(durability=config)
        durable.create_atom_type("part", part_description())
        durable.create_link_type("composition", "part", "part")
        durable.create_structure_index("part", "composition")
        reopened = PrimaEngine(durability=DurabilityConfig(tmp_path))
        assert reopened._structure_indexes.registered() == (
            ("part", "composition", "down"),
        )

    def test_checkpoint_restores_registration(self, tmp_path):
        from repro.storage.wal import DurabilityConfig

        durable = PrimaEngine(durability=DurabilityConfig(tmp_path))
        durable.create_atom_type("part", part_description())
        durable.create_link_type("composition", "part", "part")
        durable.create_structure_index("part", "composition", "up")
        durable.checkpoint()
        reopened = PrimaEngine(durability=DurabilityConfig(tmp_path))
        assert reopened._structure_indexes.registered() == (
            ("part", "composition", "up"),
        )


# ------------------------------------------------------------ property-based


relaxed = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def bom_shapes(draw):
    """A random BOM edge list over n parts: forests, DAGs, or cyclic tangles."""
    n = draw(st.integers(min_value=2, max_value=14))
    n_edges = draw(st.integers(min_value=0, max_value=min(20, n * 2)))
    edges = []
    seen = set()
    for _ in range(n_edges):
        parent = draw(st.integers(min_value=0, max_value=n - 1))
        child = draw(st.integers(min_value=0, max_value=n - 1))
        if (parent, child) in seen:
            continue
        seen.add((parent, child))
        edges.append((f"p{parent}", f"p{child}"))
    return n, edges


@relaxed
@given(shape=bom_shapes(), direction=st.sampled_from(["down", "up"]))
def test_random_shapes_parity(shape, direction):
    n, edges = shape
    accelerated = build_engine(edges=edges, parts=n, index=False)
    accelerated.create_structure_index("part", "composition", direction)
    baseline = build_engine(edges=edges, parts=n, index=False)
    statement = (
        f"SELECT ALL FROM RECURSIVE part [composition] {direction.upper()};"
    )
    assert_parity(accelerated, baseline, statement)


@relaxed
@given(
    shape=bom_shapes(),
    grafts=st.lists(
        st.tuples(st.integers(min_value=0, max_value=13), st.integers(min_value=0, max_value=13)),
        max_size=4,
    ),
    in_transaction=st.booleans(),
)
def test_random_shapes_parity_under_dml(shape, grafts, in_transaction):
    n, edges = shape
    accelerated = build_engine(edges=edges, parts=n, index=False)
    accelerated.create_structure_index("part", "composition", "down")
    baseline = build_engine(edges=edges, parts=n, index=False)
    accelerated.query(RECURSIVE_ALL)  # build before mutating
    if in_transaction:
        accelerated.query("BEGIN WORK;")
        baseline.query("BEGIN WORK;")
    applied = set(map(tuple, edges))
    for parent, child in grafts:
        edge = (f"p{parent % n}", f"p{child % n}")
        if edge in applied:
            continue
        applied.add(edge)
        for engine in (accelerated, baseline):
            engine.connect("composition", *edge)
    assert_parity(accelerated, baseline, RECURSIVE_ALL)
    if in_transaction:
        accelerated.query("COMMIT WORK;")
        baseline.query("COMMIT WORK;")
        assert_parity(accelerated, baseline, RECURSIVE_ALL)


@relaxed
@given(shape=bom_shapes())
def test_random_shapes_snapshot_parity(shape):
    n, edges = shape
    accelerated = build_engine(edges=edges, parts=n, index=False)
    accelerated.create_structure_index("part", "composition", "down")
    baseline = build_engine(edges=edges, parts=n, index=False)
    accelerated.query(RECURSIVE_ALL)
    acc_handle = accelerated.snapshot_at()
    base_handle = baseline.snapshot_at()
    try:
        accelerated.store_atom("part", identifier="pX", part_no="PX", kind="piece", cost=1)
        baseline.store_atom("part", identifier="pX", part_no="PX", kind="piece", cost=1)
        assert canonical(acc_handle.query(RECURSIVE_ALL)) == canonical(
            base_handle.query(RECURSIVE_ALL)
        )
    finally:
        acc_handle.release()
        base_handle.release()
