"""Durability parity: every E-MQL example query survives a WAL round trip.

Mirrors ``test_snapshot_stability.py``: the same benchmark statements, but the
second engine is *recovered from the first one's durability directory* instead
of pinned — a live engine and its crash-recovered twin must answer every
query byte-identically, on the geography dataset and on the recursive
bill-of-materials dataset, before and after a ``CHECKPOINT``.
"""

import json

import pytest

from repro.core.atom import reset_surrogate_counter
from repro.datasets.bill_of_materials import build_bill_of_materials
from repro.datasets.geography import load_geography
from repro.storage import DurabilityConfig, PrimaEngine

#: The statements of bench_mql_examples.py (see test_snapshot_stability.py,
#: whose structural asserts keep the list honest against the benchmark).
BENCH_MQL_STATEMENTS = (
    "SELECT ALL FROM mt_state (state - area - edge - point);",
    "SELECT ALL FROM point - edge - (area - state, net - river) WHERE point.name = 'pn';",
    "SELECT ALL FROM mt_state (state - area - edge - point) WHERE state.hectare > 800 "
    "UNION "
    "SELECT ALL FROM mt_state (state - area - edge - point) WHERE state.code = 'SP';",
    "SELECT ALL FROM mt_state (state-area-edge-point) "
    "DIFFERENCE "
    "SELECT ALL FROM mt_state (state-area-edge-point) WHERE state.hectare > 800;",
    "SELECT ALL FROM mt_state (state-area-edge-point) WHERE state.hectare > 800 "
    "INTERSECT "
    "SELECT ALL FROM mt_state (state-area-edge-point) WHERE state.code = 'MG';",
)

#: Committed DML fired through the live engine before the parity check.
DML_BURST = (
    "INSERT state - area VALUES {name: 'Tocantins', code: 'TO', hectare: 850, "
    "area: {area_id: 'a_to', kind: 'state-border'}};",
    "MODIFY state FROM state - area SET hectare = 1 WHERE state.code = 'MG';",
    "MODIFY point FROM point - edge SET name = 'renamed' WHERE point.name = 'p2';",
    "DELETE FROM state - area - edge - point WHERE state.code = 'RJ';",
)

RECURSIVE_BOM_STATEMENT = "SELECT ALL FROM RECURSIVE part [composition] DOWN;"


def fingerprint(result) -> str:
    return json.dumps(
        sorted(json.dumps(d, sort_keys=True, default=str) for d in result.to_dicts())
    )


def reopened(directory) -> PrimaEngine:
    """A fresh engine recovered from *directory* (the crash-survivor twin)."""
    return PrimaEngine("prima", durability=DurabilityConfig(directory))


@pytest.fixture()
def geo_engine(tmp_path) -> PrimaEngine:
    reset_surrogate_counter()
    engine = PrimaEngine.from_database(
        load_geography(), durability=DurabilityConfig(tmp_path / "geo", fsync="always")
    )
    engine.query(BENCH_MQL_STATEMENTS[0])  # warm snapshot / network / interpreter
    return engine


def assert_parity(live: PrimaEngine, directory, statements) -> None:
    live_prints = [fingerprint(live.query(stmt)) for stmt in statements]
    live.close()
    twin = reopened(directory)
    twin_prints = [fingerprint(twin.query(stmt)) for stmt in statements]
    twin.close()
    assert live_prints == twin_prints, "recovered engine must answer byte-identically"


def test_geography_queries_identical_after_recovery(geo_engine, tmp_path):
    for statement in DML_BURST:
        geo_engine.query(statement)
    assert_parity(geo_engine, tmp_path / "geo", BENCH_MQL_STATEMENTS)


def test_geography_parity_survives_a_checkpoint(geo_engine, tmp_path):
    # Half the burst before the checkpoint (recovered from the image), half
    # after (recovered from the truncated log's tail).
    for statement in DML_BURST[:2]:
        geo_engine.query(statement)
    geo_engine.query("CHECKPOINT;")
    for statement in DML_BURST[2:]:
        geo_engine.query(statement)
    report = geo_engine.maintenance_report()
    # Two images: the from_database bulk load persists as checkpoint #1,
    # the explicit MQL CHECKPOINT is #2.
    assert report["checkpoints"] == 2
    assert report["wal_records"] > 0
    assert_parity(geo_engine, tmp_path / "geo", BENCH_MQL_STATEMENTS)


def test_geography_parity_through_a_session_transaction(geo_engine, tmp_path):
    geo_engine.query("BEGIN WORK;")
    for statement in DML_BURST[:2]:
        geo_engine.query(statement)
    geo_engine.query("COMMIT WORK;")
    geo_engine.query("BEGIN WORK;")
    geo_engine.query(
        "INSERT state - area VALUES {name: 'Ghost', code: 'GH', hectare: 1, "
        "area: {area_id: 'a_gh', kind: 'state-border'}};"
    )
    geo_engine.query("ROLLBACK WORK;")  # must not be replayed by the twin
    assert_parity(geo_engine, tmp_path / "geo", BENCH_MQL_STATEMENTS)


def test_recursive_bom_explosion_identical_after_recovery(tmp_path):
    reset_surrogate_counter()
    database = build_bill_of_materials(depth=4, fan_out=2, share_every=3)
    engine = PrimaEngine.from_database(
        database, durability=DurabilityConfig(tmp_path / "bom", fsync="batch")
    )
    engine.query(RECURSIVE_BOM_STATEMENT)  # warm caches
    for index in range(4):
        code = f"W{index:03d}"
        engine.query(
            f"INSERT part VALUES {{part_no: '{code}', description: 'writer part', "
            f"level: 9, cost: {100 + index}}};"
        )
        engine.query(
            f"MODIFY part FROM part SET cost = {200 + index} "
            f"WHERE part.part_no = '{code}';"
        )
    engine.query("DELETE FROM part WHERE part.part_no = 'W000';")
    assert_parity(
        engine,
        tmp_path / "bom",
        (RECURSIVE_BOM_STATEMENT, "SELECT ALL FROM part WHERE part.cost > 150;"),
    )


def test_interpreter_reopens_from_directory(geo_engine, tmp_path):
    from repro.mql.interpreter import MQLInterpreter

    geo_engine.query(DML_BURST[0])
    expected = fingerprint(geo_engine.query(BENCH_MQL_STATEMENTS[0]))
    geo_engine.close()
    interpreter = MQLInterpreter.from_directory(tmp_path / "geo")
    assert fingerprint(interpreter.execute(BENCH_MQL_STATEMENTS[0])) == expected
    # The reopened interpreter serves CHECKPOINT (it is bound to a durable
    # engine) and keeps the session machinery intact.
    result = interpreter.execute("CHECKPOINT;")
    assert "WAL truncated" in result.explanation


def test_checkpoint_requires_a_durable_engine():
    from repro.exceptions import MQLSemanticError

    engine = PrimaEngine.from_database(load_geography())
    with pytest.raises(MQLSemanticError):
        engine.query("CHECKPOINT;")
    with pytest.raises(MQLSemanticError):
        engine.query("EXPLAIN CHECKPOINT;")


def test_snapshot_handles_reject_checkpoint(geo_engine):
    from repro.exceptions import StorageError

    with geo_engine.snapshot_at() as handle:
        with pytest.raises(StorageError):
            handle.query("CHECKPOINT;")
    geo_engine.close()
