"""Unit tests for atoms and atom types (Definition 1)."""

import pytest

from repro.core.atom import Atom, AtomType, reset_surrogate_counter
from repro.exceptions import DomainError, IntegrityError, SchemaError


class TestAtom:
    def test_surrogate_identifier_generated(self):
        reset_surrogate_counter()
        atom = Atom("state", {"name": "SP"})
        assert atom.identifier.startswith("state#")

    def test_explicit_identifier_kept(self):
        atom = Atom("state", {"name": "SP"}, identifier="SP")
        assert atom.identifier == "SP"

    def test_values_returns_copy(self):
        atom = Atom("state", {"name": "SP"})
        values = atom.values
        values["name"] = "changed"
        assert atom["name"] == "SP"

    def test_getitem_and_get(self):
        atom = Atom("state", {"name": "SP"})
        assert atom["name"] == "SP"
        assert atom["missing"] is None
        assert atom.get("missing", "x") == "x"

    def test_with_values_preserves_identity(self):
        atom = Atom("state", {"name": "SP", "hectare": 10}, identifier="SP")
        updated = atom.with_values(hectare=20)
        assert updated.identifier == "SP"
        assert updated["hectare"] == 20
        assert atom["hectare"] == 10

    def test_projected_keeps_identity(self):
        atom = Atom("state", {"name": "SP", "hectare": 10}, identifier="SP")
        projected = atom.projected(["name"])
        assert projected.identifier == "SP"
        assert projected.values == {"name": "SP"}

    def test_concatenated_composite_identity(self):
        left = Atom("a", {"x": 1}, identifier="a1")
        right = Atom("b", {"y": 2}, identifier="b1")
        combined = left.concatenated(right, "ab", ["x", "y"])
        assert combined.identifier == "a1&b1"
        assert combined.values == {"x": 1, "y": 2}
        assert combined.provenance() == ("a1", "b1")

    def test_concatenated_prefixed_names(self):
        left = Atom("a", {"x": 1}, identifier="a1")
        right = Atom("b", {"x": 2}, identifier="b1")
        combined = left.concatenated(right, "ab", ["x", "b.x"])
        assert combined.values == {"x": 1, "b.x": 2}

    def test_equality_by_identity_and_type(self):
        assert Atom("a", {"x": 1}, identifier="i") == Atom("a", {"x": 2}, identifier="i")
        assert Atom("a", {}, identifier="i") != Atom("b", {}, identifier="i")

    def test_hashable(self):
        atoms = {Atom("a", {}, identifier="i"), Atom("a", {}, identifier="i")}
        assert len(atoms) == 1


class TestAtomType:
    def test_accessor_functions(self):
        atom_type = AtomType("state", {"name": "string"})
        assert atom_type.name == "state"
        assert atom_type.description.names == ("name",)
        assert atom_type.occurrence == ()

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            AtomType("", {"x": "integer"})

    def test_add_mapping_creates_atom(self):
        atom_type = AtomType("state", {"name": "string"})
        atom = atom_type.add({"name": "SP"})
        assert atom in atom_type
        assert len(atom_type) == 1

    def test_insert_keyword_convenience(self):
        atom_type = AtomType("state", {"name": "string"})
        atom = atom_type.insert(name="SP", identifier="SP")
        assert atom.identifier == "SP"

    def test_add_validates_domain(self):
        atom_type = AtomType("state", {"hectare": "integer"})
        with pytest.raises(DomainError):
            atom_type.add({"hectare": "not a number"})

    def test_add_rejects_duplicate_identifier(self):
        atom_type = AtomType("state", {"name": "string"})
        atom_type.add({"name": "SP"}, identifier="SP")
        with pytest.raises(IntegrityError):
            atom_type.add({"name": "other"}, identifier="SP")

    def test_add_retypes_foreign_atom(self):
        atom_type = AtomType("state", {"name": "string"})
        foreign = Atom("other", {"name": "SP"}, identifier="x")
        stored = atom_type.add(foreign)
        assert stored.type_name == "state"
        assert stored.identifier == "x"

    def test_remove_by_identifier_and_object(self):
        atom_type = AtomType("state", {"name": "string"})
        atom = atom_type.add({"name": "SP"}, identifier="SP")
        atom_type.remove("SP")
        assert len(atom_type) == 0
        with pytest.raises(IntegrityError):
            atom_type.remove(atom)

    def test_get_and_contains(self):
        atom_type = AtomType("state", {"name": "string"})
        atom = atom_type.add({"name": "SP"}, identifier="SP")
        assert atom_type.get("SP") == atom
        assert atom_type.get("missing") is None
        assert "SP" in atom_type
        assert atom in atom_type

    def test_iteration_and_identifiers(self):
        atom_type = AtomType("state", {"name": "string"})
        atom_type.add({"name": "SP"}, identifier="SP")
        atom_type.add({"name": "MG"}, identifier="MG")
        assert {a["name"] for a in atom_type} == {"SP", "MG"}
        assert set(atom_type.identifiers()) == {"SP", "MG"}

    def test_empty_copy_and_copy(self):
        atom_type = AtomType("state", {"name": "string"})
        atom_type.add({"name": "SP"}, identifier="SP")
        empty = atom_type.empty_copy("other")
        assert empty.name == "other" and len(empty) == 0
        clone = atom_type.copy()
        assert len(clone) == 1
        clone.remove("SP")
        assert len(atom_type) == 1  # original untouched

    def test_equality(self):
        a = AtomType("state", {"name": "string"})
        b = AtomType("state", {"name": "string"})
        a.add({"name": "SP"}, identifier="SP")
        b.add({"name": "SP"}, identifier="SP")
        assert a == b
        b.add({"name": "MG"}, identifier="MG")
        assert a != b
