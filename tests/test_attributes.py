"""Unit tests for attribute descriptions, data types and domains (Definition 1 substrate)."""

import pytest

from repro.core.attributes import (
    AtomTypeDescription,
    AttributeDescription,
    DataType,
    make_description,
)
from repro.exceptions import AttributeError_, DomainError, DuplicateNameError


class TestDataType:
    def test_integer_accepts_ints_only(self):
        assert DataType.INTEGER.accepts(3)
        assert not DataType.INTEGER.accepts(3.5)
        assert not DataType.INTEGER.accepts("3")
        assert not DataType.INTEGER.accepts(True)

    def test_real_accepts_ints_and_floats(self):
        assert DataType.REAL.accepts(3)
        assert DataType.REAL.accepts(3.5)
        assert not DataType.REAL.accepts("3.5")

    def test_string_accepts_strings_only(self):
        assert DataType.STRING.accepts("hello")
        assert not DataType.STRING.accepts(5)

    def test_boolean_rejects_ints(self):
        assert DataType.BOOLEAN.accepts(True)
        assert not DataType.BOOLEAN.accepts(1)

    def test_point2d_accepts_numeric_pairs(self):
        assert DataType.POINT2D.accepts((1.0, 2.0))
        assert not DataType.POINT2D.accepts((1.0,))
        assert not DataType.POINT2D.accepts(("a", "b"))

    def test_none_accepted_by_every_type(self):
        for data_type in DataType:
            assert data_type.accepts(None)

    def test_any_accepts_everything(self):
        assert DataType.ANY.accepts(object())

    def test_coerce_int_to_real(self):
        assert DataType.REAL.coerce(3) == 3.0
        assert isinstance(DataType.REAL.coerce(3), float)

    def test_coerce_list_to_point(self):
        assert DataType.POINT2D.coerce([1, 2]) == (1, 2)

    def test_coerce_rejects_wrong_value(self):
        with pytest.raises(DomainError):
            DataType.INTEGER.coerce("not an int")


class TestAttributeDescription:
    def test_string_data_type_name_resolved(self):
        attribute = AttributeDescription("hectare", "integer")
        assert attribute.data_type is DataType.INTEGER

    def test_unknown_data_type_rejected(self):
        with pytest.raises(AttributeError_):
            AttributeDescription("x", "quaternion")

    def test_invalid_name_rejected(self):
        with pytest.raises(AttributeError_):
            AttributeDescription("", "string")
        with pytest.raises(AttributeError_):
            AttributeDescription("  padded ", "string")

    def test_validate_accepts_domain_member(self):
        attribute = AttributeDescription("hectare", "integer")
        assert attribute.validate(100) == 100

    def test_validate_rejects_non_member(self):
        attribute = AttributeDescription("hectare", "integer")
        with pytest.raises(DomainError):
            attribute.validate("a lot")

    def test_enumerated_domain(self):
        attribute = AttributeDescription("kind", "string", allowed_values=["a", "b"])
        assert attribute.validate("a") == "a"
        with pytest.raises(DomainError):
            attribute.validate("c")

    def test_required_rejects_none(self):
        attribute = AttributeDescription("name", "string", required=True)
        with pytest.raises(DomainError):
            attribute.validate(None)

    def test_optional_accepts_none(self):
        attribute = AttributeDescription("name", "string")
        assert attribute.validate(None) is None

    def test_renamed_keeps_type_and_domain(self):
        attribute = AttributeDescription("kind", "string", allowed_values=["a"])
        renamed = attribute.renamed("sort")
        assert renamed.name == "sort"
        assert renamed.data_type is DataType.STRING
        assert renamed.allowed_values == frozenset(["a"])

    def test_equality_and_hash(self):
        a = AttributeDescription("x", "integer")
        b = AttributeDescription("x", "integer")
        c = AttributeDescription("x", "string")
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestAtomTypeDescription:
    def test_names_preserve_order(self):
        description = AtomTypeDescription(["b", "a", "c"])
        assert description.names == ("b", "a", "c")

    def test_duplicate_names_rejected(self):
        with pytest.raises(DuplicateNameError):
            AtomTypeDescription(["a", "a"])

    def test_contains_and_getitem(self):
        description = AtomTypeDescription([AttributeDescription("x", "integer")])
        assert "x" in description
        assert description["x"].data_type is DataType.INTEGER
        with pytest.raises(AttributeError_):
            description["missing"]

    def test_get_returns_none_for_missing(self):
        description = AtomTypeDescription(["x"])
        assert description.get("missing") is None

    def test_validate_values_fills_missing_with_none(self):
        description = AtomTypeDescription(["x", "y"])
        assert description.validate_values({"x": 1}) == {"x": 1, "y": None}

    def test_validate_values_rejects_unknown(self):
        description = AtomTypeDescription(["x"])
        with pytest.raises(AttributeError_):
            description.validate_values({"z": 1})

    def test_project_subset(self):
        description = AtomTypeDescription(["x", "y", "z"])
        projected = description.project(["z", "x"])
        assert projected.names == ("z", "x")

    def test_project_unknown_rejected(self):
        description = AtomTypeDescription(["x"])
        with pytest.raises(AttributeError_):
            description.project(["nope"])

    def test_union_disjoint(self):
        left = AtomTypeDescription(["x"])
        right = AtomTypeDescription(["y"])
        assert left.union(right).names == ("x", "y")

    def test_union_clash_without_prefix_rejected(self):
        left = AtomTypeDescription(["x"])
        right = AtomTypeDescription(["x"])
        with pytest.raises(DuplicateNameError):
            left.union(right)

    def test_union_clash_with_prefixes(self):
        left = AtomTypeDescription(["x", "a"])
        right = AtomTypeDescription(["x", "b"])
        merged = left.union(right, "left", "right")
        assert "a" in merged and "b" in merged
        assert "right.x" in merged.names or "left.x" in merged.names

    def test_equality_is_order_insensitive(self):
        assert AtomTypeDescription(["a", "b"]) == AtomTypeDescription(["b", "a"])

    def test_make_description_from_mapping(self):
        description = make_description({"x": "integer", "y": DataType.STRING})
        assert description["x"].data_type is DataType.INTEGER
        assert description["y"].data_type is DataType.STRING

    def test_make_description_passthrough(self):
        original = AtomTypeDescription(["x"])
        assert make_description(original) is original

    def test_make_description_rejects_bad_item(self):
        with pytest.raises(AttributeError_):
            AtomTypeDescription([42])
