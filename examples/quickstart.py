"""Quickstart: define a MAD schema, load atoms and links, derive molecules, run MQL.

Walks through the paper's core ideas in ~60 lines of user code:

1. define atom types and link types (the database schema),
2. insert atoms and connect them with links (the atom networks),
3. dynamically define a molecule type with the molecule algebra (α),
4. restrict it (Σ) and project it (Π),
5. run the same query through MQL.

Run with ``python examples/quickstart.py``.
"""

from repro import Database, MoleculeAlgebra, attr
from repro.mql import execute


def build_library_database() -> Database:
    """A tiny library: authors write books, books cite books (shared subobjects)."""
    db = Database("library")
    db.define_atom_type("author", {"name": "string", "country": "string"})
    db.define_atom_type("book", {"title": "string", "year": "integer"})
    db.define_atom_type("chapter", {"title": "string", "pages": "integer"})
    db.define_link_type("wrote", "author", "book")
    db.define_link_type("contains", "book", "chapter")

    codd = db.insert_atom("author", name="E. F. Codd", country="UK")
    ullman = db.insert_atom("author", name="J. D. Ullman", country="US")
    relational = db.insert_atom("book", title="The Relational Model", year=1970)
    principles = db.insert_atom("book", title="Principles of Database Systems", year=1980)
    survey = db.insert_atom("book", title="Databases: A Survey", year=1985)

    db.connect("wrote", codd, relational)
    db.connect("wrote", ullman, principles)
    db.connect("wrote", codd, survey)
    db.connect("wrote", ullman, survey)  # co-authored: 'survey' is a shared subobject

    for book, titles in (
        (relational, ["Relations", "Normal Forms"]),
        (principles, ["Algebra", "Calculus", "Optimization"]),
        (survey, ["History"]),
    ):
        for index, title in enumerate(titles):
            chapter = db.insert_atom("chapter", title=title, pages=20 + 5 * index)
            db.connect("contains", book, chapter)
    return db


def main() -> None:
    db = build_library_database()
    print(db)

    # --- molecule algebra -------------------------------------------------
    algebra = MoleculeAlgebra(db)
    oeuvre = algebra.define(
        "oeuvre",
        ["author", "book", "chapter"],
        [("wrote", "author", "book"), ("contains", "book", "chapter")],
    )
    print(f"\nMolecule type {oeuvre.name!r}: one molecule per author")
    for molecule in oeuvre:
        books = [atom["title"] for atom in molecule.atoms_of_type("book")]
        print(f"  {molecule.root_atom['name']}: {len(molecule)} atoms, books={books}")

    shared = oeuvre.shared_atoms()
    print(f"\nShared subobjects (atoms in more than one molecule): {len(shared)}")

    recent = algebra.restrict(oeuvre, attr("year", "book") >= 1980)
    print(f"Authors with a book from 1980 or later: {len(recent.molecule_type)}")

    compact = algebra.project(recent.molecule_type, ["author", "book"])
    for molecule in compact.molecule_type:
        print("  projected molecule:", molecule.to_nested_dict())

    # --- the same query in MQL --------------------------------------------
    result = execute(
        db,
        "SELECT ALL FROM oeuvre (author -[wrote]- book -[contains]- chapter) "
        "WHERE book.year >= 1980;",
    )
    print(f"\nMQL result: {len(result)} molecules")
    for nested in result.to_dicts():
        print(" ", nested["name"], "->", [b["title"] for b in nested.get("book", [])])


if __name__ == "__main__":
    main()
