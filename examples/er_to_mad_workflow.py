"""From an ER diagram to a MAD database to queries — the Fig. 1 modeling workflow.

The paper derives its MAD schema from an ER diagram by the one-to-one mapping
(entity type → atom type, relationship type → link type) and contrasts it with
the relational mapping, which needs one auxiliary relation per n:m
relationship type.  This example performs both mappings for a small
project-management application, loads data through the PRIMA-like engine, and
shows that complex-object queries need no auxiliary structures on the MAD
side.

Run with ``python examples/er_to_mad_workflow.py``.
"""

from repro.er import ERSchema, er_to_mad, er_to_relational_schemas
from repro.er.to_mad import er_to_mad_report
from repro.er.to_relational import auxiliary_relation_count
from repro.storage import PrimaEngine


def project_er_schema() -> ERSchema:
    """Employees work on projects (n:m), projects produce documents (1:n)."""
    schema = ERSchema("projects")
    schema.add_entity("employee", name="string", role="string")
    schema.add_entity("project", title="string", budget="integer")
    schema.add_entity("document", title="string", pages="integer")
    schema.add_relationship("works-on", "employee", "project", "n:m")
    schema.add_relationship("produces", "project", "document", "1:n")
    schema.add_relationship("reviews", "employee", "document", "n:m")
    return schema


def main() -> None:
    er = project_er_schema()
    print(f"ER schema: {len(er.entity_types)} entity types, "
          f"{len(er.relationship_types)} relationship types "
          f"({len(er.many_to_many_relationships())} of them n:m)")

    # --- ER -> MAD: one-to-one, no auxiliary structures ---------------------
    mad = er_to_mad(er)
    report = er_to_mad_report(er, mad)
    print("\nER -> MAD mapping (one-to-one):")
    for er_name, (kind, mad_name) in report.items():
        print(f"  {er_name:<12} {kind:<32} -> {mad_name}")

    # --- ER -> relational: junction relations appear ------------------------
    relational = er_to_relational_schemas(er)
    print("\nER -> relational mapping:")
    for name, schema in relational.items():
        print(f"  {name:<12} attributes={list(schema.attributes)}")
    print(f"  auxiliary (junction) relations needed: {auxiliary_relation_count(er)}")
    print("  auxiliary structures needed on the MAD side: 0")

    # --- load data through the storage engine and query --------------------
    engine = PrimaEngine("projects")
    for atom_type in mad.atom_types:
        engine.create_atom_type(atom_type.name, atom_type.description)
    for link_type in mad.link_types:
        engine.create_link_type(link_type.name, *link_type.atom_type_names)

    alice = engine.store_atom("employee", name="Alice", role="engineer")
    bob = engine.store_atom("employee", name="Bob", role="designer")
    dbms = engine.store_atom("project", title="DBMS kernel", budget=900)
    cad = engine.store_atom("project", title="CAD frontend", budget=400)
    spec = engine.store_atom("document", title="Kernel spec", pages=120)
    manual = engine.store_atom("document", title="User manual", pages=80)

    engine.connect("works-on", alice, dbms)
    engine.connect("works-on", alice, cad)
    engine.connect("works-on", bob, cad)
    engine.connect("produces", dbms, spec)
    engine.connect("produces", cad, manual)
    engine.connect("reviews", bob, spec)

    result = engine.query(
        "SELECT ALL FROM employee -[works-on]- project -[produces]- document "
        "WHERE employee.name = 'Alice';"
    )
    print(f"\nAlice's projects and their documents ({len(result)} molecule):")
    for nested in result.to_dicts():
        for project in nested.get("project", []):
            documents = [doc["title"] for doc in project.get("document", [])]
            print(f"  {project['title']} (budget {project['budget']}): {documents}")


if __name__ == "__main__":
    main()
