"""The paper's geographic application end to end (Figures 1, 2 and 4 + chapter 4).

Loads the Brazil database, prints its formal specification (Fig. 4), derives
the two molecule types of Fig. 2 (``mt_state`` and ``point neighborhood``),
shows the shared subobjects, and runs the two MQL statements of chapter 4.

Run with ``python examples/geographic_queries.py``.
"""

from repro import MoleculeAlgebra, attr, formal_specification, load_geography
from repro.datasets.geography import mt_state_description, point_neighborhood_description
from repro.mql import MQLInterpreter
from repro.storage import AtomNetwork


def main() -> None:
    db = load_geography()
    print("=== Figure 4: formal specification of the geographic database ===")
    print(formal_specification(db))

    algebra = MoleculeAlgebra(db)

    # --- Figure 2, molecule type 'mt state' --------------------------------
    atom_types, directed_links = mt_state_description()
    mt_state = algebra.define("mt_state", atom_types, directed_links)
    print(f"\n=== Figure 2: molecule type 'mt_state' ({len(mt_state)} molecules) ===")
    for molecule in mt_state:
        print(
            f"  {molecule.root_atom['code']:>2}: {len(molecule)} atoms "
            f"({len(molecule.atoms_of_type('edge'))} edges, "
            f"{len(molecule.atoms_of_type('point'))} points)"
        )
    shared = mt_state.shared_atoms()
    print(f"  shared subobjects between state molecules: {len(shared)} atoms")

    # --- Figure 2, molecule type 'point neighborhood' ----------------------
    atom_types, directed_links = point_neighborhood_description()
    neighborhood = algebra.define("point_neighborhood", atom_types, directed_links)
    pn_only = algebra.restrict(neighborhood, attr("name", "point") == "pn")
    print("\n=== Figure 2: the neighborhood of point 'pn' ===")
    for molecule in pn_only.molecule_type:
        states = sorted(atom["code"] for atom in molecule.atoms_of_type("state"))
        rivers = sorted(atom["name"] for atom in molecule.atoms_of_type("river"))
        print(f"  states: {states}, rivers: {rivers}")

    # --- chapter 4: the two MQL statements ---------------------------------
    interpreter = MQLInterpreter(db)
    print("\n=== Chapter 4: MQL statements and their algebra plans ===")
    statement_1 = "SELECT ALL FROM mt_state (state - area - edge - point);"
    statement_2 = (
        "SELECT ALL FROM point - edge - (area - state, net - river) "
        "WHERE point.name = 'pn';"
    )
    for statement in (statement_1, statement_2):
        print(f"\nMQL> {statement}")
        for line in interpreter.explain(statement):
            print("  plan:", line)
        result = interpreter.execute(statement)
        print(f"  -> {len(result)} molecules")

    # --- link-degree statistics of the atom networks (Fig. 1 report) -------
    network = AtomNetwork(db)
    print("\n=== Atom-network statistics (Fig. 1 occurrence) ===")
    for type_name, stats in sorted(network.degree_statistics().items()):
        print(
            f"  {type_name:<6} atoms={int(stats['atoms']):>3}  "
            f"degree min/mean/max = {stats['min']:.0f}/{stats['mean']:.1f}/{stats['max']:.0f}"
        )
    print(
        "  edges shared between a state border and a river course:",
        network.shared_atom_count("area", "net"),
    )


if __name__ == "__main__":
    main()
