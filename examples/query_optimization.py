"""Algebraic query optimization over molecule queries (the §5 outlook, E-PERF3).

Builds a scaled synthetic geography, expresses the "large states with their
geometry" query as the literal algebra plan MQL produces (α → Σ → Π), lets the
planner rewrite it (restriction push-down + structure pruning), and compares
the measured work of both variants.

Run with ``python examples/query_optimization.py``.
"""

from repro import attr, build_geography
from repro.core.molecule import MoleculeTypeDescription
from repro.datasets.geography import mt_state_description
from repro.optimizer import DefinePlan, Planner, ProjectPlan, RestrictPlan, execute_plan


def main() -> None:
    db = build_geography(n_states=40, edges_per_state=6, n_rivers=6)
    print(db)

    atom_types, directed_links = mt_state_description()
    description = MoleculeTypeDescription(atom_types, directed_links)

    # The literal translation of:
    #   SELECT state, area FROM mt_state(state-area-edge-point)
    #   WHERE state.hectare > 700;
    naive_plan = ProjectPlan(
        RestrictPlan(
            DefinePlan("mt_state", description),
            attr("hectare", "state") > 700,
        ),
        ("state", "area"),
    )

    planner = Planner(db)
    choice = planner.optimize(naive_plan)
    print("\n" + choice.explain())
    print(f"\nestimated improvement: {choice.improvement:.1f}x")

    naive = execute_plan(db, choice.original)
    optimized = execute_plan(db, choice.optimized)
    print("\nmeasured work:")
    print(
        f"  naive:     {len(naive.molecule_type)} result molecules, "
        f"{naive.counters.molecules_derived} molecules derived, "
        f"{naive.counters.atoms_touched} atoms touched"
    )
    print(
        f"  optimized: {len(optimized.molecule_type)} result molecules, "
        f"{optimized.counters.molecules_derived} molecules derived, "
        f"{optimized.counters.atoms_touched} atoms touched"
    )
    assert len(naive.molecule_type) == len(optimized.molecule_type), "rewrites must preserve results"
    speedup = naive.counters.atoms_touched / max(1, optimized.counters.atoms_touched)
    print(f"  atoms-touched reduction: {speedup:.1f}x")


if __name__ == "__main__":
    main()
