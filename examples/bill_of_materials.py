"""Bill of materials: reflexive link types, recursion, and the two symmetric views (§3.1, §5).

The paper's running example for reflexive link types: one atom type ``part``
and one reflexive link type ``composition``.  "Exploiting the link type's
symmetry it is now easy to evaluate either the super-component view or only
the sub-component view."  This example builds an assembly, asks for the parts
explosion (sub-component view) and the where-used list (super-component view),
and compares the recursive molecule evaluation against the relational
transitive closure over a junction relation.

Run with ``python examples/bill_of_materials.py``.
"""

from repro import RecursiveDescription, build_bill_of_materials, recursive_molecule_type
from repro.datasets.bill_of_materials import root_parts
from repro.mql import execute
from repro.relational import map_database
from repro.relational.query import relational_transitive_closure


def main() -> None:
    db = build_bill_of_materials(depth=4, fan_out=3, share_every=3, n_roots=2)
    parts = db.atyp("part")
    composition = db.ltyp("composition")
    print(f"bill of material: {len(parts)} parts, {len(composition)} composition links")

    roots = root_parts(db)
    print("top-level assemblies:", [root["part_no"] for root in roots])

    # --- parts explosion (sub-component view) ------------------------------
    explosion_type = recursive_molecule_type(
        db, "parts_explosion", RecursiveDescription("part", "composition", "down"), roots
    )
    for molecule in explosion_type:
        print(f"\nparts explosion of {molecule.root_atom['part_no']} "
              f"({len(molecule) - 1} components, depth {molecule.depth()}):")
        for level, atom in molecule.explosion()[:10]:
            print(f"  {'  ' * level}level {level}: {atom['part_no']}  (cost {atom['cost']})")
        if len(molecule) > 10:
            print(f"  ... {len(molecule) - 10} more components")

    # --- where-used (super-component view), same link type -----------------
    leaf = max(parts, key=lambda atom: atom["level"])
    where_used = recursive_molecule_type(
        db, "where_used", RecursiveDescription("part", "composition", "up"), [leaf]
    )
    ancestors = [atom["part_no"] for atom in where_used.occurrence[0].atoms]
    print(f"\nwhere-used of {leaf['part_no']}: {sorted(ancestors)}")

    # --- the same explosion through MQL ------------------------------------
    result = execute(db, "SELECT ALL FROM RECURSIVE part [composition] DOWN;")
    largest = max(result, key=len)
    print(f"\nMQL recursive query: {len(result)} molecules, "
          f"largest explosion has {len(largest)} parts")

    # --- relational comparison: iterative transitive closure ---------------
    mapping = map_database(db)
    closures = relational_transitive_closure(
        mapping, "composition", [root.identifier for root in roots]
    )
    for root in roots:
        molecule = explosion_type.molecules_rooted_at(root.identifier)[0]
        relational_size = len(closures[root.identifier])
        print(
            f"explosion of {root['part_no']}: MAD recursive molecule = {len(molecule) - 1} parts, "
            f"relational transitive closure = {relational_size} parts (must agree)"
        )
        assert len(molecule) - 1 == relational_size


if __name__ == "__main__":
    main()
